// Command cprd is the pin-access-optimization service daemon: a
// long-running HTTP/JSON server that accepts design-optimization
// requests, runs them through the CPR pipeline on a bounded job manager,
// and serves repeat submissions from a content-addressed result cache.
//
// Usage:
//
//	cprd                                  # listen on :8080
//	cprd -addr 127.0.0.1:9090 -max-jobs 4 -queue-cap 128
//	cprd -job-timeout 2m -cache-cap 4096 -workers 0
//	cprd -blockstore-dir /var/lib/cprd -peers http://node-a:8080,http://node-b:8080
//
// Endpoints: POST /v1/jobs, GET /v1/jobs/{id}, GET /v1/jobs/{id}/trace,
// GET/HEAD /v1/blocks/{key}, GET /v1/healthz, GET /v1/stats,
// GET /metrics (Prometheus text),
// GET /debug/vars. With -debug-addr a second listener serves
// net/http/pprof profiles on a private address. On SIGTERM/SIGINT the
// daemon stops accepting jobs, drains in-flight work (bounded by
// -drain-timeout, with running jobs canceled at the deadline), and exits
// cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cpr/internal/blockstore"
	"cpr/internal/cliutil"
	"cpr/internal/core"
	"cpr/internal/design"
	"cpr/internal/exchange"
	"cpr/internal/jobs"
	"cpr/internal/server"
	"cpr/internal/tech"
	"cpr/internal/telemetry"
)

// splitPeers parses the comma-separated -peers value into a list of
// base URLs, dropping empty entries so trailing commas are harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		maxJobs      = flag.Int("max-jobs", 2, "max concurrently running jobs")
		queueCap     = flag.Int("queue-cap", 64, "max queued jobs before 429 backpressure")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "per-job execution deadline (0 = none)")
		cacheCap     = flag.Int("cache-cap", 1024, "max cached results (LRU eviction)")
		panelCap     = flag.Int("panel-cache-cap", 16384, "max cached per-panel artifacts (LRU eviction)")
		routeCap     = flag.Int("route-cache-cap", 16384, "max cached per-region route bundles (LRU eviction)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
		debugAddr    = flag.String("debug-addr", "", "private listen address for net/http/pprof (empty = disabled)")
		traceJobs    = flag.Bool("trace-jobs", true, "record a span trace per executed job (GET /v1/jobs/{id}/trace)")
		eventRing    = flag.Int("event-ring", telemetry.DefaultEventRing, "flight-recorder ring size: recent structured events served on GET /v1/debug/events and streamed on GET /v1/jobs/{id}/events (0 = disabled)")
		crashDump    = flag.String("crash-dump", "cprd-crash-events.json", "file the flight recorder is flushed to when a job panics (empty = disabled)")
		nodeName     = flag.String("node-name", "", "name identifying this daemon in cross-node traces and events (default: the listen address)")
		peersFlag    = flag.String("peers", "", "comma-separated peer daemon base URLs to resolve cache misses from (e.g. http://node-a:8080,http://node-b:8080)")
		storeDir     = flag.String("blockstore-dir", "", "directory for the persistent artifact blockstore (empty = in-memory)")
		storeMax     = flag.Int64("blockstore-max-bytes", 256<<20, "blockstore size bound before LRU garbage collection (0 = unbounded)")
		peerTimeout  = flag.Duration("peer-timeout", exchange.DefaultPeerTimeout, "per-peer block fetch deadline")
		workers      = cliutil.Workers()
		ruleEngine   = cliutil.RuleEngine()
	)
	flag.Parse()

	// The daemon-level engine default participates in job fingerprints
	// (applied in the server before submission), so validate it up front.
	defaultEngine := ""
	if *ruleEngine != "" {
		var err error
		if defaultEngine, err = tech.ParseEngine(*ruleEngine); err != nil {
			log.Fatalf("cprd: %v", err)
		}
	}

	registry := telemetry.NewRegistry()

	// The result cache always sits on a content-addressed blockstore:
	// disk-backed (surviving restarts) when -blockstore-dir is set,
	// in-memory otherwise. With -peers, misses additionally fan out to
	// peer daemons over HTTP before falling back to recompute.
	var store blockstore.Store
	storeDesc := "mem"
	if *storeDir != "" {
		storeDesc = *storeDir
		disk, err := blockstore.OpenDisk(*storeDir, blockstore.DiskOptions{MaxBytes: *storeMax})
		if err != nil {
			log.Fatalf("cprd: open blockstore %s: %v", *storeDir, err)
		}
		store = disk
	} else {
		store = blockstore.NewMem(*storeMax)
	}
	peers := splitPeers(*peersFlag)
	var fetcher exchange.Fetcher
	if len(peers) > 0 {
		fetcher = exchange.NewHTTPFetcher(peers, exchange.HTTPOptions{Timeout: *peerTimeout, Registry: registry})
	}
	exch := exchange.New(store, fetcher, registry)
	resultCache := jobs.NewExchangedResultCache(*cacheCap, *panelCap, *routeCap, exch)

	// The event bus is the flight recorder and the SSE stream source. It
	// is on by default and independent of -trace-jobs: post-mortems via
	// GET /v1/debug/events must not depend on tracing having been enabled.
	var events *telemetry.EventBus
	if *eventRing > 0 {
		events = telemetry.NewEventBus(*eventRing)
	}
	mgr := jobs.New(jobs.Config{
		MaxConcurrent: *maxJobs,
		QueueCap:      *queueCap,
		JobTimeout:    *jobTimeout,
		Metrics:       registry,
		TraceJobs:     *traceJobs,
		Events:        events,
		CrashDump:     *crashDump,
		Run: func(ctx context.Context, d *design.Design, opts core.Options) (*core.RunResult, error) {
			if opts.Workers == 0 {
				opts.Workers = *workers
			}
			return core.RunContext(ctx, d, opts)
		},
		Rerun: func(ctx context.Context, prev *core.RunResult, d *design.Design, opts core.Options) (*core.RunResult, error) {
			if opts.Workers == 0 {
				opts.Workers = *workers
			}
			return core.RerunContext(ctx, prev, d, opts)
		},
	}, resultCache)

	apiSrv := server.New(mgr)
	apiSrv.SetExchange(exch, peers)
	apiSrv.SetEvents(events)
	if *nodeName != "" {
		apiSrv.SetNode(*nodeName)
	} else {
		apiSrv.SetNode(*addr)
	}
	if defaultEngine != "" {
		apiSrv.SetDefaultRuleEngine(defaultEngine)
	}
	srv := &http.Server{Addr: *addr, Handler: apiSrv.Handler()}

	// The pprof listener is separate from the API address so profiling
	// endpoints can stay on a private interface.
	if *debugAddr != "" {
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("cprd: pprof listening on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, debugMux); err != nil {
				log.Printf("cprd: pprof listener: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("cprd: listening on %s (max-jobs=%d queue-cap=%d job-timeout=%v cache-cap=%d blockstore=%s peers=%d)",
			*addr, *maxJobs, *queueCap, *jobTimeout, *cacheCap, storeDesc, len(peers))
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		log.Printf("cprd: received %v, draining (timeout %v)", sig, *drainTimeout)
	case err := <-errCh:
		log.Fatalf("cprd: server error: %v", err)
	}

	// Drain first so /v1/jobs rejects with 503 while status endpoints
	// keep answering, then close the listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := mgr.Drain(drainCtx); err != nil {
		log.Printf("cprd: drain deadline hit, canceled in-flight jobs: %v", err)
	} else {
		log.Printf("cprd: drained cleanly")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("cprd: http shutdown: %v", err)
	}
	log.Printf("cprd: exit")
}
