// Package server implements the cprd HTTP/JSON API on top of the jobs
// manager and the content-addressed result cache:
//
//	POST /v1/jobs             submit a design (inline or synthesized from a spec)
//	GET  /v1/jobs/{id}        job status / result / error
//	GET  /v1/jobs/{id}/trace  per-job span trace (Chrome trace_event or JSON)
//	GET  /v1/blocks/{key}     one content-addressed block from the local store (HEAD: presence)
//	GET  /v1/healthz          liveness and drain state
//	GET  /v1/stats            queue depth, cache hit rate, per-stage latencies
//	GET  /metrics             Prometheus text exposition of the manager's registry
//	GET  /debug/vars          the same counters via expvar
//
// Identical submissions are served from cache (no optimizer run) and
// identical in-flight submissions coalesce onto one job. A submission
// naming a finished base_job reruns incrementally, recomputing only the
// panels its edit dirtied (the result is byte-identical either way). A
// full queue answers 429; a draining server answers 503.
package server

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cpr/internal/blockstore"
	"cpr/internal/core"
	"cpr/internal/design"
	"cpr/internal/designio"
	"cpr/internal/exchange"
	"cpr/internal/httpapi"
	"cpr/internal/jobs"
	"cpr/internal/synth"
	"cpr/internal/tech"
	"cpr/internal/telemetry"
)

// maxRequestBytes bounds a submission body (designs are text; the
// largest Table 2 circuit encodes to well under 4 MiB).
const maxRequestBytes = 32 << 20

// Server routes HTTP requests to a jobs.Manager.
type Server struct {
	mgr   *jobs.Manager
	exch  *exchange.Service
	peers []string
	// defaultRuleEngine is applied to submissions that do not name a
	// rule engine themselves. It participates in job fingerprints exactly
	// like a per-request engine, so two daemons with different defaults
	// never alias cache entries.
	defaultRuleEngine string
	// events backs GET /v1/jobs/{id}/events (SSE) and
	// GET /v1/debug/events (flight recorder); nil disables both.
	events *telemetry.EventBus
	// node names this daemon in block-serve spans and events, so a
	// stitched cross-node trace identifies which peer did the work.
	node string
	// eventHeartbeat overrides the SSE heartbeat cadence (tests).
	eventHeartbeat time.Duration
}

// New wires a server to its manager and registers the manager's stats
// with the process-wide expvar registry (last server wins, so tests can
// create many).
func New(mgr *jobs.Manager) *Server {
	s := &Server{mgr: mgr}
	currentManager.Store(mgr)
	publishExpvars()
	return s
}

// SetExchange attaches the block exchange service. The server then
// serves GET/HEAD /v1/blocks/{key} from the service's local store —
// never by fetching from its own peers, so one cluster-wide miss costs
// each node at most one fan-out instead of a fetch storm — and includes
// blockstore and exchange counters in /v1/stats. peers is the
// configured peer list, echoed in stats for operability.
func (s *Server) SetExchange(svc *exchange.Service, peers []string) {
	s.exch = svc
	s.peers = peers
}

// SetDefaultRuleEngine sets the multi-patterning engine used when a
// submission leaves Options.RuleEngine empty. The name must already be
// validated (tech.ParseEngine); per-request engines always win.
func (s *Server) SetDefaultRuleEngine(name string) {
	s.defaultRuleEngine = name
}

// SetEvents attaches the event bus — normally the same bus the jobs
// manager publishes to — enabling GET /v1/jobs/{id}/events and
// GET /v1/debug/events.
func (s *Server) SetEvents(bus *telemetry.EventBus) {
	s.events = bus
}

// SetNode names this daemon in cross-node spans and events.
func (s *Server) SetNode(name string) {
	s.node = name
}

// SetEventHeartbeat overrides the SSE heartbeat cadence; intended for
// tests (the default is 15s).
func (s *Server) SetEventHeartbeat(d time.Duration) {
	s.eventHeartbeat = d
}

// The expvar registry is process-global and Publish panics on duplicate
// names, so the published Func reads whichever manager was wired most
// recently.
var (
	currentManager atomic.Pointer[jobs.Manager]
	expvarOnce     sync.Once
)

func publishExpvars() {
	expvarOnce.Do(func() {
		expvar.Publish("cprd", expvar.Func(func() any {
			if m := currentManager.Load(); m != nil {
				return m.Stats()
			}
			return nil
		}))
	})
}

// Handler builds the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleGetTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/debug/events", s.handleDebugEvents)
	mux.HandleFunc("GET /v1/blocks/{key}", s.handleGetBlock)
	mux.HandleFunc("HEAD /v1/blocks/{key}", s.handleGetBlock)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > maxRequestBytes {
		writeError(w, http.StatusRequestEntityTooLarge, errors.New("request body too large"))
		return
	}
	var req httpapi.SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	d, err := buildDesign(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts, err := buildOptions(req.Options, s.defaultRuleEngine)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	job, err := s.mgr.SubmitBase(d, opts, req.BaseJob)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, jobs.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}

	if req.Wait {
		if err := job.Wait(r.Context()); err != nil {
			// The client went away or timed out; the job keeps running.
			writeJSON(w, http.StatusAccepted, jobToWire(job.Snapshot()))
			return
		}
	}
	snap := job.Snapshot()
	status := http.StatusAccepted
	if snap.State.Terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, jobToWire(snap))
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, jobToWire(job.Snapshot()))
}

// handleGetTrace serves a finished (or running) job's span trace.
// ?format=chrome (default) renders Chrome trace_event JSON loadable in
// chrome://tracing or Perfetto; ?format=json renders the raw span
// records. Jobs answered from cache never ran, so they have no trace.
func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	tr := job.Tracer()
	if tr == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no trace for job %q (tracing disabled, or the job was served from cache)", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	switch format := r.URL.Query().Get("format"); format {
	case "", "chrome":
		_ = tr.WriteChromeTrace(w, telemetry.ExportOptions{})
	case "json":
		_ = tr.WriteJSON(w, telemetry.ExportOptions{})
	default:
		w.Header().Del("Content-Type")
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want chrome, json)", format))
	}
}

// handleMetrics serves the manager's metrics registry in Prometheus text
// exposition format. Without a configured registry the body is empty —
// still a valid scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.mgr.Metrics().WritePrometheus(w)
}

// handleGetBlock serves one content-addressed block from the local
// store. Strictly observational: a node answers only with blocks it
// already holds (404 otherwise) and never computes or forwards on a
// peer's behalf. HEAD reports presence without the body.
func (s *Server) handleGetBlock(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if s.exch == nil {
		writeError(w, http.StatusNotFound, errors.New("no block exchange configured"))
		return
	}
	if !blockstore.ValidKey(key) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed block key %q", key))
		return
	}
	if r.Method == http.MethodHead {
		ok, err := s.exch.Has(key)
		if err != nil || !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		return
	}
	t0 := time.Now()
	data, err := s.exch.Store().Get(key)
	switch {
	case errors.Is(err, blockstore.ErrNotFound):
		writeError(w, http.StatusNotFound, fmt.Errorf("no block for key %s", key))
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	// Cross-node trace stitching (DESIGN.md §4j): record the requester's
	// trace identity in our flight recorder and describe the work we did
	// in the SpanHeader, which the requester adopts as a child of its
	// peer_fetch span. Headers must be set before the body write.
	evData := map[string]any{"key": key}
	if s.node != "" {
		evData["node"] = s.node
	}
	if sc, ok := telemetry.ParseSpanContext(r.Header.Get(telemetry.TraceHeader)); ok {
		evData["trace"] = sc.TraceID
		evData["parent_span"] = sc.SpanID
	}
	s.events.Publish("", "block_serve", evData)
	attrs := []telemetry.Attr{{Key: "key", Value: key}}
	if s.node != "" {
		attrs = append(attrs, telemetry.Attr{Key: "node", Value: s.node})
	}
	w.Header().Set(telemetry.SpanHeader, telemetry.EncodeRemoteSpan(telemetry.RemoteSpan{
		Name:       "serve_block",
		DurationNS: time.Since(t0).Nanoseconds(),
		Attrs:      attrs,
	}))
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.mgr.Stats()
	writeJSON(w, http.StatusOK, httpapi.Health{Status: "ok", Draining: st.Draining})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.mgr.Stats()
	var bsStats *blockstore.Stats
	var exStats *exchange.Stats
	var peers []string
	var peerHealth []exchange.PeerHealth
	if s.exch != nil {
		bs := s.exch.Store().Stats()
		bsStats = &bs
		ex := s.exch.Stats()
		exStats = &ex
		peers = s.peers
		peerHealth = s.exch.PeerHealth()
	}
	writeJSON(w, http.StatusOK, httpapi.Stats{
		QueueDepth:         st.QueueDepth,
		QueueCap:           st.QueueCap,
		Running:            st.Running,
		Draining:           st.Draining,
		ByState:            st.ByState,
		RejectedQueueFull:  st.RejectedQueueFull,
		RejectedDraining:   st.RejectedDraining,
		Cache:              st.Cache,
		CacheHitRate:       st.CacheHitRate,
		PanelCache:         st.PanelCache,
		PanelCacheHitRate:  st.PanelCacheHitRate,
		RouteCache:         st.RouteCache,
		RouteCacheHitRate:  st.RouteCacheHitRate,
		Stages:             st.Stages,
		Blockstore:         bsStats,
		Exchange:           exStats,
		Peers:              peers,
		PeerHealth:         peerHealth,
		QueueWaitHistogram: st.QueueWait,
		EventsDropped:      st.EventsDropped,
	})
}

// buildDesign materializes the request's design: inline text or a
// synthesized spec, exactly one of which must be present.
func buildDesign(req *httpapi.SubmitRequest) (*design.Design, error) {
	switch {
	case req.Design != "" && req.Spec != nil:
		return nil, errors.New("request sets both design and spec; choose one")
	case req.Design != "":
		d, err := designio.Read(strings.NewReader(req.Design))
		if err != nil {
			return nil, fmt.Errorf("parsing design: %w", err)
		}
		return d, nil
	case req.Spec != nil:
		ws := req.Spec
		if ws.Circuit != "" {
			spec, err := synth.SpecByName(ws.Circuit)
			if err != nil {
				return nil, err
			}
			return synth.Generate(spec)
		}
		return synth.Generate(synth.Spec{
			Name:             ws.Name,
			Nets:             ws.Nets,
			Width:            ws.Width,
			Height:           ws.Height,
			Seed:             ws.Seed,
			BlockageFraction: ws.BlockageFraction,
		})
	default:
		return nil, errors.New("request needs a design or a spec")
	}
}

// buildOptions maps wire options onto core.Options. defaultEngine fills
// Options.RuleEngine when the request leaves it empty; it must be set
// before fingerprinting (here, not in the job runner) so the content
// address always reflects the engine the job will actually run under.
func buildOptions(wo *httpapi.Options, defaultEngine string) (core.Options, error) {
	var opts core.Options
	opts.RuleEngine = defaultEngine
	if wo == nil {
		return opts, nil
	}
	switch wo.Mode {
	case "", "cpr":
		opts.Mode = core.ModeCPR
	case "nopinopt":
		opts.Mode = core.ModeNoPinOpt
	case "sequential":
		opts.Mode = core.ModeSequential
	default:
		return opts, fmt.Errorf("unknown mode %q (want cpr, nopinopt, sequential)", wo.Mode)
	}
	switch wo.Optimizer {
	case "", "lr":
		opts.Optimizer = core.OptLR
	case "ilp":
		opts.Optimizer = core.OptILP
	default:
		return opts, fmt.Errorf("unknown optimizer %q (want lr, ilp)", wo.Optimizer)
	}
	opts.Workers = wo.Workers
	opts.LR.MaxIterations = wo.LRMaxIterations
	opts.LR.Alpha = wo.LRAlpha
	opts.ILP.TimeLimit = time.Duration(wo.ILPTimeLimitMS) * time.Millisecond
	opts.ILP.MaxNodes = wo.ILPMaxNodes
	opts.Router.MaxNegotiationIters = wo.MaxNegotiationIters
	if wo.RuleEngine != "" {
		engine, err := tech.ParseEngine(wo.RuleEngine)
		if err != nil {
			return opts, err
		}
		opts.RuleEngine = engine
	}
	mode, err := core.ParseRerunMode(wo.RerunMode)
	if err != nil {
		return opts, err
	}
	opts.RerunMode = mode
	return opts, nil
}

// jobToWire converts a snapshot into its wire form.
func jobToWire(s jobs.Snapshot) httpapi.Job {
	wj := httpapi.Job{
		ID:          s.ID,
		Key:         s.Key,
		BaseJob:     s.BaseJobID,
		State:       s.State.String(),
		Cached:      s.Cached,
		Error:       s.Err,
		QueueWaitMS: float64(s.QueueWait) / float64(time.Millisecond),
		RunMS:       float64(s.RunTime) / float64(time.Millisecond),
	}
	if s.Result != nil {
		res := &httpapi.Result{
			Mode:    s.Result.Mode.String(),
			Metrics: s.Result.Metrics,
		}
		if po := s.Result.PinOpt; po != nil {
			res.PinOpt = &httpapi.PinOptSummary{
				Panels:    len(po.Panels),
				Pins:      po.TotalPins,
				Intervals: po.TotalIntervals,
				Conflicts: po.TotalConflicts,
				Objective: po.Objective,
				ElapsedMS: float64(po.Elapsed) / float64(time.Millisecond),
			}
		}
		if inc := s.Result.Incremental; inc != nil {
			res.Incremental = &httpapi.IncrementalSummary{
				Panels:         inc.Panels,
				Reused:         inc.Reused,
				Recomputed:     inc.Recomputed,
				Regions:        inc.Regions,
				RegionsSpliced: inc.RegionsSpliced,
				NetsSpliced:    inc.NetsSpliced,
				NetsWarm:       inc.NetsWarm,
				NetsRerouted:   inc.NetsRerouted,
			}
		}
		wj.Result = res
	}
	return wj
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, httpapi.Error{Error: err.Error()})
}
