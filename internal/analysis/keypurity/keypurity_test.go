package keypurity_test

import (
	"testing"

	"cpr/internal/analysis/analysistest"
	"cpr/internal/analysis/keypurity"
)

func TestKeypurity(t *testing.T) {
	analysistest.Run(t, "testdata", keypurity.Analyzer,
		"keypurity",
		"keypurityclean",
	)
}
