// Package core wires the full concurrent pin access router (CPR) pipeline
// together (paper §4): panel-by-panel pin access interval generation,
// conflict detection, weighted interval assignment (exact ILP or scalable
// Lagrangian relaxation), interval seeding as partial routes, and
// negotiation-congestion routing with SADP line-end rules.
//
// It also runs the paper's two baselines on the same substrate: the
// negotiation router without pin access optimization ([21]) and the
// sequential pin-access-planning router ([12]).
package core

import (
	"context"
	"fmt"
	"time"

	"cpr/internal/assign"
	"cpr/internal/design"
	"cpr/internal/grid"
	"cpr/internal/ilp"
	"cpr/internal/lagrange"
	"cpr/internal/metrics"
	"cpr/internal/parallel"
	"cpr/internal/pinaccess"
	"cpr/internal/router"
)

// Mode selects the routing flow.
type Mode int

const (
	// ModeCPR is the paper's contribution: concurrent pin access
	// optimization followed by negotiation routing.
	ModeCPR Mode = iota
	// ModeNoPinOpt is the [21] baseline: negotiation routing with other
	// nets' pins as blockages but no interval optimization.
	ModeNoPinOpt
	// ModeSequential is the [12] baseline: sequential pin access planning
	// and routing with net deferring.
	ModeSequential
)

func (m Mode) String() string {
	switch m {
	case ModeCPR:
		return "cpr"
	case ModeNoPinOpt:
		return "no-pinopt"
	default:
		return "sequential"
	}
}

// Optimizer selects the interval assignment solver for ModeCPR.
type Optimizer int

const (
	// OptLR is the scalable Lagrangian relaxation algorithm (default).
	OptLR Optimizer = iota
	// OptILP is the exact branch-and-bound ILP.
	OptILP
)

func (o Optimizer) String() string {
	if o == OptILP {
		return "ilp"
	}
	return "lr"
}

// Options configures a run. Zero values give the paper's defaults
// (ModeCPR with LR optimization).
type Options struct {
	Mode       Mode
	Optimizer  Optimizer
	LR         lagrange.Config
	ILP        ilp.Config
	Router     router.Config
	Sequential router.SequentialConfig
	// Profit is the interval profit function (default assign.SqrtProfit).
	// With more than one worker it must be safe for concurrent calls (the
	// built-in profit functions are pure).
	Profit assign.ProfitFn
	// Workers bounds the concurrency of the whole optimization pipeline:
	// panel subproblems run on a shared pool, and spare capacity flows
	// into the per-track interval generation, the per-track conflict
	// sweeps, and the per-conflict-set LR subgradient updates of each
	// panel. 0 selects runtime.GOMAXPROCS(0); 1 forces the fully
	// sequential path. The determinism contract of internal/parallel
	// guarantees byte-identical results — metrics, selected intervals,
	// and routes — for every value (only wall-clock fields such as
	// Metrics.CPUSeconds and PinOptReport.Elapsed vary).
	Workers int
	// Parallelism is the number of panels optimized concurrently.
	//
	// Deprecated: set Workers instead. Parallelism is honoured only when
	// Workers is zero.
	Parallelism int
}

// workers resolves the effective worker count for a run.
func (o Options) workers() int {
	if o.Workers != 0 {
		return parallel.Resolve(o.Workers)
	}
	if o.Parallelism != 0 {
		return parallel.Resolve(o.Parallelism)
	}
	return parallel.Resolve(0)
}

// PanelReport records pin access optimization results for one panel.
type PanelReport struct {
	Panel      int
	Pins       int
	Intervals  int
	Conflicts  int
	Objective  float64
	Violations int
	Converged  bool
}

// PinOptReport aggregates pin access optimization over all panels.
type PinOptReport struct {
	Panels         []PanelReport
	TotalPins      int
	TotalIntervals int
	TotalConflicts int
	Objective      float64
	Elapsed        time.Duration
}

// RunResult is the complete outcome of a flow run.
type RunResult struct {
	Mode    Mode
	PinOpt  *PinOptReport // nil for baseline modes
	Router  *router.Result
	Metrics metrics.Routing
}

// Run executes the selected flow on a validated design. It is the
// background-context wrapper around RunContext.
func Run(d *design.Design, opts Options) (*RunResult, error) {
	return RunContext(context.Background(), d, opts)
}

// RunContext executes the selected flow on a validated design,
// honouring ctx for cancellation: the context is polled between panel
// subproblems, between LR subgradient iterations, and between pipeline
// stages, so a canceled or timed-out run stops doing work promptly and
// returns an error wrapping ctx.Err(). A context that never fires
// leaves the computation byte-identical to Run.
func RunContext(ctx context.Context, d *design.Design, opts Options) (*RunResult, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opts.Profit == nil {
		opts.Profit = assign.SqrtProfit
	}
	g := grid.New(d)
	r := router.New(d, g, opts.Router)
	res := &RunResult{Mode: opts.Mode}

	switch opts.Mode {
	case ModeCPR:
		report, seeds, err := OptimizePinAccessContext(ctx, d, opts)
		if err != nil {
			return nil, err
		}
		res.PinOpt = report
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		for _, s := range seeds {
			r.SeedAssignment(s.Set, s.Solution)
		}
		res.Router = r.Run()
	case ModeNoPinOpt:
		res.Router = r.Run()
	case ModeSequential:
		res.Router = r.RunSequential(opts.Sequential)
	default:
		return nil, fmt.Errorf("core: unknown mode %d", opts.Mode)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	res.Metrics = metrics.FromResult(d, res.Router)
	if res.PinOpt != nil {
		res.Metrics.CPUSeconds += res.PinOpt.Elapsed.Seconds()
	}
	return res, nil
}

// PanelSeed couples one panel's interval set with its assignment for
// router seeding.
type PanelSeed struct {
	Set      *pinaccess.Set
	Solution *assign.Solution
}

// OptimizePinAccess runs concurrent pin access optimization on every
// panel of the design with the configured optimizer and returns the
// per-panel reports plus the seeds for the router. Panels are independent
// subproblems solved concurrently on opts.Workers workers (default
// GOMAXPROCS) with byte-identical results for every worker count.
func OptimizePinAccess(d *design.Design, opts Options) (*PinOptReport, []PanelSeed, error) {
	return OptimizePinAccessContext(context.Background(), d, opts)
}

// OptimizePinAccessContext is OptimizePinAccess with cancellation: ctx is
// checked before each panel subproblem starts and between the LR
// subgradient iterations inside each panel, so a canceled run abandons
// remaining work and reports an error wrapping ctx.Err().
func OptimizePinAccessContext(ctx context.Context, d *design.Design, opts Options) (*PinOptReport, []PanelSeed, error) {
	if opts.Profit == nil {
		opts.Profit = assign.SqrtProfit
	}
	start := time.Now() //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result
	idx := d.BuildTrackIndex()

	var panels []int
	for panel := 0; panel < d.NumPanels(); panel++ {
		if len(d.PinsInPanel(panel)) > 0 {
			panels = append(panels, panel)
		}
	}

	// Panels are the outer shard; when there are fewer panels than
	// workers (a single-panel sweep design, say), the spare capacity
	// flows into each panel's per-track and per-conflict-set stages.
	workers := opts.workers()
	inner := 1
	if len(panels) > 0 {
		inner = (workers + len(panels) - 1) / len(panels)
	}

	type panelResult struct {
		report PanelReport
		seed   PanelSeed
		err    error
	}
	results := make([]panelResult, len(panels))
	solve := func(slot, panel int) {
		if err := ctx.Err(); err != nil {
			results[slot].err = fmt.Errorf("core: panel %d: %w", panel, err)
			return
		}
		pins := d.PinsInPanel(panel)
		set, err := pinaccess.GenerateWithOptions(d, idx, pins, pinaccess.Options{Workers: inner})
		if err != nil {
			results[slot].err = fmt.Errorf("core: panel %d: %w", panel, err)
			return
		}
		model := assign.BuildWorkers(set, opts.Profit, inner)
		sol, converged, err := solvePanel(ctx, model, opts, inner)
		if err != nil {
			results[slot].err = fmt.Errorf("core: panel %d: %w", panel, err)
			return
		}
		if err := model.CheckLegal(sol); err != nil {
			results[slot].err = fmt.Errorf("core: panel %d produced illegal assignment: %w", panel, err)
			return
		}
		results[slot] = panelResult{
			report: PanelReport{
				Panel:      panel,
				Pins:       len(pins),
				Intervals:  model.NumIntervals(),
				Conflicts:  len(model.Conflicts.Sets),
				Objective:  sol.Objective,
				Violations: sol.Violations,
				Converged:  converged,
			},
			seed: PanelSeed{Set: set, Solution: sol},
		}
	}

	// Per-slot writes plus the ordered reduce below keep the report and
	// seed order byte-identical for every worker count.
	parallel.ForEach(workers, len(panels), func(slot int) {
		solve(slot, panels[slot])
	})

	report := &PinOptReport{}
	var seeds []PanelSeed
	for _, pr := range results {
		if pr.err != nil {
			return nil, nil, pr.err
		}
		report.Panels = append(report.Panels, pr.report)
		report.TotalPins += pr.report.Pins
		report.TotalIntervals += pr.report.Intervals
		report.TotalConflicts += pr.report.Conflicts
		report.Objective += pr.report.Objective
		seeds = append(seeds, pr.seed)
	}
	report.Elapsed = time.Since(start) //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result
	return report, seeds, nil
}

// solvePanel dispatches to the configured optimizer. An ILP run that hits
// its limits falls back to the LR solution, mirroring how a production
// flow would degrade. workers bounds the LR solver's per-iteration
// concurrency unless the caller pinned it explicitly in opts.LR.
func solvePanel(ctx context.Context, model *assign.Model, opts Options, workers int) (*assign.Solution, bool, error) {
	if opts.Optimizer == OptILP {
		sol, res, err := model.SolveILP(opts.ILP)
		if err == nil {
			return sol, res.Status == ilp.Optimal, nil
		}
		// Fall through to LR on solver limits.
	}
	lrCfg := opts.LR
	if lrCfg.Workers == 0 {
		lrCfg.Workers = workers
	}
	if lrCfg.Stop == nil && ctx.Done() != nil {
		lrCfg.Stop = func() bool { return ctx.Err() != nil }
	}
	res := lagrange.Solve(model, lrCfg)
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	return res.Solution, res.Converged, nil
}
