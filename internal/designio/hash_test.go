package designio

import (
	"strings"
	"testing"

	"cpr/internal/synth"
)

func TestHashIsContentAddress(t *testing.T) {
	gen := func(seed int64) string {
		d, err := synth.Generate(synth.Spec{Name: "hash", Nets: 30, Width: 90, Height: 30, Seed: seed})
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		h, err := Hash(d)
		if err != nil {
			t.Fatalf("hash: %v", err)
		}
		return h
	}
	a, b := gen(1), gen(1)
	if a != b {
		t.Fatalf("identical designs hash differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("hash is not hex sha256: %q", a)
	}
	if c := gen(2); c == a {
		t.Fatal("different designs collided")
	}
}

// TestHashSurvivesRoundTrip pins the property the daemon cache depends
// on: a design that travels through the text format (e.g. submitted
// inline over HTTP) keeps its content address.
func TestHashSurvivesRoundTrip(t *testing.T) {
	d, err := synth.Generate(synth.Spec{Name: "rt", Nets: 25, Width: 80, Height: 30, Seed: 4})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	before, err := Hash(d)
	if err != nil {
		t.Fatalf("hash: %v", err)
	}
	var sb strings.Builder
	if err := Write(&sb, d); err != nil {
		t.Fatalf("write: %v", err)
	}
	parsed, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	after, err := Hash(parsed)
	if err != nil {
		t.Fatalf("hash: %v", err)
	}
	if before != after {
		t.Fatalf("hash changed across round trip: %s vs %s", before, after)
	}
}
