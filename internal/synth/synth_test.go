package synth

import (
	"testing"

	"cpr/internal/tech"
)

func TestTableSpecsMatchPaper(t *testing.T) {
	specs := TableSpecs()
	if len(specs) != 6 {
		t.Fatalf("got %d specs, want 6", len(specs))
	}
	wantNets := map[string]int{
		"ecc": 1671, "efc": 2219, "ctl": 2706, "alu": 3108, "div": 5813, "top": 22201,
	}
	for _, s := range specs {
		if wantNets[s.Name] != s.Nets {
			t.Errorf("%s: nets = %d, want %d (paper Table 2)", s.Name, s.Nets, wantNets[s.Name])
		}
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("alu")
	if err != nil || s.Nets != 3108 {
		t.Errorf("SpecByName(alu) = %+v, %v", s, err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Error("want error for unknown circuit")
	}
}

func TestGenerateSmallCircuit(t *testing.T) {
	spec := Spec{Name: "mini", Nets: 50, Width: 60, Height: 40, Seed: 1}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nets) != 50 {
		t.Errorf("nets = %d, want 50", len(d.Nets))
	}
	st := d.ComputeStats()
	if st.AvgDegree < 2.0 || st.AvgDegree > 3.2 {
		t.Errorf("avg degree = %g, want around 2.5", st.AvgDegree)
	}
	if st.Panels != 4 {
		t.Errorf("panels = %d, want 4", st.Panels)
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	spec := Spec{Name: "det", Nets: 40, Width: 60, Height: 40, Seed: 7}
	a := MustGenerate(spec)
	b := MustGenerate(spec)
	if len(a.Pins) != len(b.Pins) || len(a.Blockages) != len(b.Blockages) {
		t.Fatal("same seed produced different structure")
	}
	for i := range a.Pins {
		if a.Pins[i].Shape != b.Pins[i].Shape || a.Pins[i].NetID != b.Pins[i].NetID {
			t.Fatalf("pin %d differs between runs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := MustGenerate(Spec{Name: "s1", Nets: 40, Width: 60, Height: 40, Seed: 1})
	b := MustGenerate(Spec{Name: "s2", Nets: 40, Width: 60, Height: 40, Seed: 2})
	same := true
	for i := range a.Pins {
		if i >= len(b.Pins) || a.Pins[i].Shape != b.Pins[i].Shape {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical placements")
	}
}

func TestNetsAreLocal(t *testing.T) {
	spec := Spec{Name: "local", Nets: 80, Width: 100, Height: 50, Seed: 3}
	d := MustGenerate(spec)
	maxSpan := spec.withDefaults().MaxNetSpan
	for i := range d.Nets {
		box := d.NetBBox(i)
		if box.Width()-1 > 2*maxSpan {
			t.Errorf("net %d spans %d columns, want <= %d", i, box.Width()-1, 2*maxSpan)
		}
	}
}

func TestBlockagesAvoidPins(t *testing.T) {
	d := MustGenerate(Spec{Name: "blk", Nets: 60, Width: 80, Height: 40, Seed: 9, BlockageFraction: 0.05})
	if len(d.Blockages) == 0 {
		t.Fatal("no blockages generated")
	}
	for _, b := range d.Blockages {
		if b.Layer != tech.M2 {
			t.Errorf("blockage on layer %d, want M2", b.Layer)
		}
		for i := range d.Pins {
			if d.Pins[i].Shape.Overlaps(b.Shape) {
				t.Fatalf("blockage %v overlaps pin %q", b.Shape, d.Pins[i].Name)
			}
		}
	}
}

func TestGenerateRejectsImpossibleDensity(t *testing.T) {
	// 1000 nets cannot fit on a 10x10 grid.
	if _, err := Generate(Spec{Name: "dense", Nets: 1000, Width: 10, Height: 10, Seed: 1}); err == nil {
		t.Error("want density error")
	}
}

func TestGenerateRejectsInvalidSpec(t *testing.T) {
	if _, err := Generate(Spec{Name: "bad", Nets: 0, Width: 10, Height: 10}); err == nil {
		t.Error("want error for zero nets")
	}
}

func TestSweepSpecScaling(t *testing.T) {
	for _, pins := range []int{100, 1000, 6000} {
		spec := SweepSpec(pins, 42)
		d, err := Generate(spec)
		if err != nil {
			t.Fatalf("SweepSpec(%d): %v", pins, err)
		}
		got := len(d.Pins)
		if got < pins*6/10 || got > pins*14/10 {
			t.Errorf("SweepSpec(%d) produced %d pins, want within 40%%", pins, got)
		}
		if d.Height%10 != 0 {
			t.Errorf("SweepSpec(%d) height %d not whole panels", pins, d.Height)
		}
	}
}

func TestTableCircuitsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 2 generation in -short mode")
	}
	for _, spec := range TableSpecs() {
		if spec.Name == "top" && testing.Short() {
			continue
		}
		d, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(d.Nets) != spec.Nets {
			t.Errorf("%s: generated %d nets, want %d", spec.Name, len(d.Nets), spec.Nets)
		}
	}
}

func TestGenerateMultiRegion(t *testing.T) {
	spec := Spec{Name: "multi", Nets: 60, Width: 120, Height: 40, Seed: 5}
	const regions, gap = 3, 300
	d, err := GenerateMultiRegion(spec, regions, gap)
	if err != nil {
		t.Fatalf("GenerateMultiRegion: %v", err)
	}
	if want := regions*spec.Width + (regions-1)*gap; d.Width != want {
		t.Fatalf("width = %d, want %d", d.Width, want)
	}
	if len(d.Nets) != regions*spec.Nets {
		t.Fatalf("nets = %d, want %d", len(d.Nets), regions*spec.Nets)
	}
	// Every pin sits inside its tile's column band: the gaps are empty.
	for _, p := range d.Pins {
		tile := -1
		for k := 0; k < regions; k++ {
			lo := k * (spec.Width + gap)
			if p.Shape.X0 >= lo && p.Shape.X1 < lo+spec.Width {
				tile = k
				break
			}
		}
		if tile == -1 {
			t.Fatalf("pin %s at %v lands in a gap", p.Name, p.Shape)
		}
		if want := "r" + string(rune('0'+tile)) + "_"; len(p.Name) < 3 || p.Name[:3] != want {
			t.Fatalf("pin %s in tile %d not prefixed %q", p.Name, tile, want)
		}
	}
	d2, err := GenerateMultiRegion(spec, regions, gap)
	if err != nil {
		t.Fatalf("regenerate: %v", err)
	}
	if len(d2.Pins) != len(d.Pins) {
		t.Fatalf("generation not deterministic: %d vs %d pins", len(d2.Pins), len(d.Pins))
	}
}

func TestGenerateMultiRegionRejectsBadShape(t *testing.T) {
	spec := Spec{Name: "m", Nets: 10, Width: 60, Height: 20, Seed: 1}
	if _, err := GenerateMultiRegion(spec, 0, 10); err == nil {
		t.Error("want error for zero regions")
	}
	if _, err := GenerateMultiRegion(spec, 2, -1); err == nil {
		t.Error("want error for negative gap")
	}
}
