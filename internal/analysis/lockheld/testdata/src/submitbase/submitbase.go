// Package submitbase replays the reverted PR 7 job-manager bug as a
// negative control: the design-cache lookup — which resolves misses
// over peer HTTP three packages away — ran inside the manager mutex,
// so one slow peer fetch stalled every concurrent submitter. lockheld
// must flag the historical shape (SubmitBase) and stay quiet on the
// fixed shape (SubmitFixed), which resolves the miss off-lock and
// re-takes the lock only to publish.
package submitbase

import (
	"sync"

	"submitbase/cache"
)

type Manager struct {
	mu   sync.Mutex
	jobs map[string]string
	c    *cache.Backed
}

func (m *Manager) SubmitBase(key string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.jobs[key]; ok {
		return v
	}
	v, _ := m.c.Get(key) // want `call that may block: call to net/http\.\(\*Client\)\.Get \(via \(\*submitbase/cache\.Backed\)\.Get -> \(\*submitbase/exchange\.Service\)\.GetBlock\) while "m\.mu" is held`
	m.jobs[key] = v
	return v
}

func (m *Manager) SubmitFixed(key string) string {
	m.mu.Lock()
	if v, ok := m.jobs[key]; ok {
		m.mu.Unlock()
		return v
	}
	m.mu.Unlock()
	v, _ := m.c.Get(key)
	m.mu.Lock()
	m.jobs[key] = v
	m.mu.Unlock()
	return v
}
