// Package experiments regenerates every table and figure of the paper's
// evaluation (§5):
//
//   - Table 2  — Rout.%, Via#, WL, cpu(s) for the sequential baseline
//     [12], the negotiation baseline without pin access optimization
//     [21], and CPR, over the six benchmark circuits.
//   - Figure 6(a) — LR vs ILP runtime versus pin count.
//   - Figure 6(b) — LR vs ILP objective versus pin count.
//   - Figure 7(a) — LR/ILP ratios of Rout./Via#/WL after routing.
//   - Figure 7(b) — congested routing grids with and without pin access
//     optimization, before the rip-up-and-reroute stage.
//
// Absolute values depend on the synthetic benchmark substrate (see
// DESIGN.md); the comparisons and trends are the reproduction targets.
package experiments

import (
	"fmt"
	"io"
	"time"

	"cpr/internal/assign"
	"cpr/internal/core"
	"cpr/internal/design"
	"cpr/internal/ilp"
	"cpr/internal/lagrange"
	"cpr/internal/metrics"
	"cpr/internal/pinaccess"
	"cpr/internal/synth"
)

// Config selects circuits and effort for the experiment harness.
type Config struct {
	// Circuits restricts runs to these Table 2 circuit names
	// (default: all six).
	Circuits []string
	// Quick scales effort down: smaller Figure 6 sweeps and tighter ILP
	// limits, so every experiment finishes in seconds to minutes.
	Quick bool
	// ILPTimeLimit bounds each ILP solve (default 60s, quick 5s).
	ILPTimeLimit time.Duration
	// Workers bounds the optimization pipeline's concurrency per run
	// (0 = GOMAXPROCS, 1 = sequential); results are identical either way.
	Workers int
}

func (c Config) withDefaults() Config {
	if len(c.Circuits) == 0 {
		c.Circuits = []string{"ecc", "efc", "ctl", "alu", "div", "top"}
	}
	if c.ILPTimeLimit == 0 {
		if c.Quick {
			c.ILPTimeLimit = 5 * time.Second
		} else {
			c.ILPTimeLimit = 60 * time.Second
		}
	}
	return c
}

func (c Config) circuits() ([]*design.Design, error) {
	var out []*design.Design
	for _, name := range c.Circuits {
		spec, err := synth.SpecByName(name)
		if err != nil {
			return nil, err
		}
		d, err := synth.Generate(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// Table2 reproduces the paper's Table 2: each circuit routed by the
// sequential pin access planning baseline [12], the negotiation router
// without pin access optimization [21], and CPR.
func Table2(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	designs, err := cfg.circuits()
	if err != nil {
		return err
	}
	modes := []struct {
		label string
		mode  core.Mode
	}{
		{"Sequential pin access planning [12]", core.ModeSequential},
		{"Routing w/o pin access optimization [21]", core.ModeNoPinOpt},
		{"CPR", core.ModeCPR},
	}
	rows := make(map[core.Mode][]metrics.Routing)
	for _, d := range designs {
		for _, m := range modes {
			// Fresh design per run: routing mutates grid state.
			spec, _ := synth.SpecByName(d.Name)
			fresh := synth.MustGenerate(spec)
			res, err := core.Run(fresh, core.Options{Mode: m.mode, Workers: cfg.Workers})
			if err != nil {
				return fmt.Errorf("table2 %s/%s: %w", d.Name, m.label, err)
			}
			rows[m.mode] = append(rows[m.mode], res.Metrics)
		}
	}
	for _, m := range modes {
		fmt.Fprintf(w, "--- %s ---\n", m.label)
		fmt.Fprintln(w, metrics.Header())
		for _, r := range rows[m.mode] {
			fmt.Fprintln(w, r.Row())
		}
		avg := metrics.Average(rows[m.mode])
		fmt.Fprintln(w, avg.Row())
	}
	// Ratio row: each mode's averages over CPR's (the paper normalizes
	// to CPR = 1.000).
	cprAvg := metrics.Average(rows[core.ModeCPR])
	fmt.Fprintln(w, "--- Ratios vs CPR (Rout, Via#, WL, cpu) ---")
	for _, m := range modes {
		r := metrics.RatioOf(metrics.Average(rows[m.mode]), cprAvg)
		fmt.Fprintf(w, "%-42s %.3f %.3f %.3f %.2f\n", m.label, r.Rout, r.Vias, r.WL, r.CPU)
	}
	return nil
}

// Fig6Point is one sweep sample of the LR-vs-ILP scalability study.
type Fig6Point struct {
	Pins         int
	LRSeconds    float64
	LRObjective  float64
	ILPSeconds   float64
	ILPObjective float64
	ILPStatus    string
	ILPRan       bool
}

// Fig6 runs the Figure 6 sweep: a single weighted-interval-assignment
// instance per pin count, solved by LR and (up to ilpMaxPins) by exact
// ILP. Returns the series for both runtime (6a) and objective (6b).
func Fig6(w io.Writer, cfg Config) ([]Fig6Point, error) {
	cfg = cfg.withDefaults()
	pinCounts := []int{100, 200, 400, 800, 1600, 3200, 6000}
	ilpMaxPins := 800
	if cfg.Quick {
		pinCounts = []int{50, 100, 200, 400}
		ilpMaxPins = 200
	}
	var points []Fig6Point
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s %10s\n",
		"pins", "LR cpu(s)", "ILP cpu(s)", "LR obj", "ILP obj", "ILP status")
	for _, target := range pinCounts {
		d, err := synth.Generate(synth.SweepSpec(target, 77))
		if err != nil {
			return nil, err
		}
		model, err := wholeDesignModel(d)
		if err != nil {
			return nil, err
		}
		pt := Fig6Point{Pins: model.NumPins()}

		t0 := time.Now()
		lrRes := lagrange.Solve(model, lagrange.Config{Workers: cfg.Workers})
		pt.LRSeconds = time.Since(t0).Seconds()
		pt.LRObjective = lrRes.Solution.Objective

		if pt.Pins <= ilpMaxPins {
			pt.ILPRan = true
			t0 = time.Now()
			sol, res, err := model.SolveILP(ilp.Config{TimeLimit: cfg.ILPTimeLimit})
			pt.ILPSeconds = time.Since(t0).Seconds()
			pt.ILPStatus = res.Status.String()
			if err == nil {
				pt.ILPObjective = sol.Objective
			}
		}
		ilpCPU, ilpObj, ilpStatus := "-", "-", "skipped (size cap)"
		if pt.ILPRan {
			ilpCPU = fmt.Sprintf("%.3f", pt.ILPSeconds)
			ilpObj = fmt.Sprintf("%.1f", pt.ILPObjective)
			ilpStatus = pt.ILPStatus
		}
		fmt.Fprintf(w, "%8d %12.3f %12s %12.1f %12s %10s\n",
			pt.Pins, pt.LRSeconds, ilpCPU, pt.LRObjective, ilpObj, ilpStatus)
		points = append(points, pt)
	}
	return points, nil
}

// wholeDesignModel builds one assignment model over every pin of the
// design (all panels together), as used by the Figure 6 scalability
// sweeps.
func wholeDesignModel(d *design.Design) (*assign.Model, error) {
	pins := make([]int, len(d.Pins))
	for i := range pins {
		pins[i] = i
	}
	set, err := pinaccess.Generate(d, d.BuildTrackIndex(), pins)
	if err != nil {
		return nil, err
	}
	return assign.Build(set, assign.SqrtProfit), nil
}

// Fig7aRow holds one circuit's LR-over-ILP routing quality ratios.
type Fig7aRow struct {
	Circuit string
	Rout    float64
	Vias    float64
	WL      float64
}

// Fig7a reproduces Figure 7(a): route each circuit once with LR-based and
// once with ILP-based pin access optimization and report LR/ILP metric
// ratios. ILP solves that exceed the per-panel limits fall back to LR for
// that panel (reported by the core pipeline), which matches how the exact
// approach degrades at scale.
func Fig7a(w io.Writer, cfg Config) ([]Fig7aRow, error) {
	cfg = cfg.withDefaults()
	var rows []Fig7aRow
	fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "ckt", "Rout LR/ILP", "Via LR/ILP", "WL LR/ILP")
	for _, name := range cfg.Circuits {
		spec, err := synth.SpecByName(name)
		if err != nil {
			return nil, err
		}
		lrRun, err := core.Run(synth.MustGenerate(spec), core.Options{Mode: core.ModeCPR, Optimizer: core.OptLR, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		ilpRun, err := core.Run(synth.MustGenerate(spec), core.Options{
			Mode:      core.ModeCPR,
			Optimizer: core.OptILP,
			ILP:       ilp.Config{TimeLimit: cfg.ILPTimeLimit},
			Workers:   cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		ratio := metrics.RatioOf(lrRun.Metrics, ilpRun.Metrics)
		row := Fig7aRow{Circuit: name, Rout: ratio.Rout, Vias: ratio.Vias, WL: ratio.WL}
		fmt.Fprintf(w, "%-8s %10.3f %10.3f %10.3f\n", row.Circuit, row.Rout, row.Vias, row.WL)
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7bRow holds one circuit's initial congested grid counts.
type Fig7bRow struct {
	Circuit     string
	WithPinOpt  int
	WithoutOpt  int
	Reduction   float64
	RowRendered string
}

// Fig7b reproduces Figure 7(b): the number of congested routing grids
// before the rip-up-and-reroute stage, with and without concurrent pin
// access optimization.
func Fig7b(w io.Writer, cfg Config) ([]Fig7bRow, error) {
	cfg = cfg.withDefaults()
	var rows []Fig7bRow
	fmt.Fprintf(w, "%-8s %14s %14s %10s\n", "ckt", "w/ pin opt", "w/o pin opt", "reduction")
	for _, name := range cfg.Circuits {
		spec, err := synth.SpecByName(name)
		if err != nil {
			return nil, err
		}
		withOpt, err := core.Run(synth.MustGenerate(spec), core.Options{Mode: core.ModeCPR, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		withoutOpt, err := core.Run(synth.MustGenerate(spec), core.Options{Mode: core.ModeNoPinOpt, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		row := Fig7bRow{
			Circuit:    name,
			WithPinOpt: withOpt.Metrics.InitialCongested,
			WithoutOpt: withoutOpt.Metrics.InitialCongested,
		}
		if row.WithPinOpt > 0 {
			row.Reduction = float64(row.WithoutOpt) / float64(row.WithPinOpt)
		}
		fmt.Fprintf(w, "%-8s %14d %14d %9.2fx\n",
			row.Circuit, row.WithPinOpt, row.WithoutOpt, row.Reduction)
		rows = append(rows, row)
	}
	return rows, nil
}
