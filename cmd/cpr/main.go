// Command cpr routes a benchmark circuit with the concurrent pin access
// router or one of the paper's two baselines and prints a Table 2 style
// metrics row.
//
// Usage:
//
//	cpr -circuit ecc -mode cpr
//	cpr -circuit div -mode sequential
//	cpr -nets 500 -width 200 -height 100 -seed 7 -mode nopinopt
//	cpr -circuit ecc -mode cpr -optimizer ilp -ilp-timeout 30s
//	cpr -load edited.cprd -baseline original.cprd   # incremental (ECO) rerun
//	cpr -circuit ecc -trace ecc.trace.json          # Chrome trace of the pipeline
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"cpr/internal/cliutil"
	"cpr/internal/core"
	"cpr/internal/design"
	"cpr/internal/designio"
	"cpr/internal/grid"
	"cpr/internal/ilp"
	"cpr/internal/metrics"
	"cpr/internal/render"
	"cpr/internal/synth"
)

func main() {
	var (
		circuit    = flag.String("circuit", "", "Table 2 circuit name (ecc efc ctl alu div top); empty uses -nets/-width/-height")
		nets       = flag.Int("nets", 200, "net count for a custom synthetic circuit")
		width      = flag.Int("width", 200, "grid width for a custom circuit")
		height     = flag.Int("height", 100, "grid height for a custom circuit")
		seed       = cliutil.Seed(1)
		mode       = cliutil.Mode()
		optimizer  = cliutil.Optimizer()
		workers    = cliutil.Workers()
		ruleEngine = cliutil.RuleEngine()
		ilpTimeout = cliutil.ILPTimeout(30 * time.Second)
		verbose    = flag.Bool("v", false, "print pin optimization and stage details")
		progress   = flag.Bool("progress", false, "stream LR-iteration and negotiation-round progress to stderr while routing")
		baseline   = cliutil.Baseline()
		rerunMode  = cliutil.RerunMode()
		loadPath   = flag.String("load", "", "load the design from a cpr-design file instead of generating")
		savePath   = flag.String("save", "", "write the design to a cpr-design file before routing")
		svgPath    = flag.String("svg", "", "write the routed layout as SVG")
		asciiPanel = flag.Int("ascii", -1, "print the given panel's M2 occupancy as ASCII")
		tracePath  = cliutil.Trace()
		traceFmt   = cliutil.TraceFormat()
	)
	flag.Parse()

	ctx, flushTrace, err := cliutil.StartTrace(context.Background(), *tracePath, *traceFmt)
	if err != nil {
		fatal(err)
	}
	stopProgress := func() {}
	if *progress {
		ctx, stopProgress = startProgress(ctx)
	}

	var d *design.Design
	if *loadPath != "" {
		f, ferr := os.Open(*loadPath)
		if ferr != nil {
			fatal(ferr)
		}
		d, err = designio.Read(f)
		f.Close()
	} else {
		d, err = buildDesign(*circuit, *nets, *width, *height, *seed)
	}
	if err != nil {
		fatal(err)
	}
	if *savePath != "" {
		f, ferr := os.Create(*savePath)
		if ferr != nil {
			fatal(ferr)
		}
		if err := designio.Write(f, d); err != nil {
			fatal(err)
		}
		f.Close()
	}

	opts := core.Options{ILP: ilp.Config{TimeLimit: *ilpTimeout}, Workers: *workers, RuleEngine: *ruleEngine}
	if opts.Mode, err = cliutil.ParseMode(*mode); err != nil {
		fatal(err)
	}
	if opts.Optimizer, err = cliutil.ParseOptimizer(*optimizer); err != nil {
		fatal(err)
	}
	if opts.RerunMode, err = core.ParseRerunMode(*rerunMode); err != nil {
		fatal(err)
	}

	var res *core.RunResult
	if *baseline != "" {
		base, berr := cliutil.ReadDesign(*baseline)
		if berr != nil {
			fatal(berr)
		}
		baseRes, berr := core.RunContext(ctx, base, opts)
		if berr != nil {
			fatal(fmt.Errorf("baseline run: %w", berr))
		}
		res, err = core.RerunContext(ctx, baseRes, d, opts)
	} else {
		res, err = core.RunContext(ctx, d, opts)
	}
	stopProgress()
	if err != nil {
		fatal(err)
	}
	if err := flushTrace(); err != nil {
		fatal(fmt.Errorf("writing trace: %w", err))
	}
	if *svgPath != "" {
		f, ferr := os.Create(*svgPath)
		if ferr != nil {
			fatal(ferr)
		}
		if err := render.SVG(f, d, grid.New(d), res.Router, nil, render.SVGOptions{}); err != nil {
			fatal(err)
		}
		f.Close()
	}
	if *asciiPanel >= 0 {
		if err := render.ASCII(os.Stdout, d, grid.New(d), res.Router, *asciiPanel); err != nil {
			fatal(err)
		}
	}

	fmt.Println(metrics.Header())
	fmt.Println(res.Metrics.Row())
	if inc := res.Incremental; inc != nil {
		fmt.Printf("incremental: reused %d/%d panels, recomputed %d\n",
			inc.Reused, inc.Panels, len(inc.Recomputed))
		if inc.Regions > 0 {
			fmt.Printf("incremental: spliced %d/%d regions (%d nets spliced, %d warm-started, %d rerouted)\n",
				inc.RegionsSpliced, inc.Regions, inc.NetsSpliced, inc.NetsWarm, inc.NetsRerouted)
		}
	}
	if *verbose {
		fmt.Printf("initial congested grids: %d\n", res.Metrics.InitialCongested)
		fmt.Printf("negotiation iterations:  %d\n", res.Metrics.NegotiationIters)
		fmt.Printf("congestion unrouted:     %d\n", res.Router.CongestionUnrouted)
		fmt.Printf("DRC unrouted:            %d\n", res.Router.DRCUnrouted)
		if res.PinOpt != nil {
			fmt.Printf("pin opt: %d pins, %d intervals, %d conflict sets, objective %.1f in %v\n",
				res.PinOpt.TotalPins, res.PinOpt.TotalIntervals,
				res.PinOpt.TotalConflicts, res.PinOpt.Objective, res.PinOpt.Elapsed)
		}
	}
}

func buildDesign(circuit string, nets, width, height int, seed int64) (*design.Design, error) {
	if circuit != "" {
		spec, err := synth.SpecByName(circuit)
		if err != nil {
			return nil, err
		}
		return synth.Generate(spec)
	}
	return synth.Generate(synth.Spec{
		Name: "custom", Nets: nets, Width: width, Height: height, Seed: seed,
	})
}

func fatal(err error) { cliutil.Fatal("cpr", err) }
