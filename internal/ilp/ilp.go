// Package ilp implements an exact 0/1 integer linear programming solver via
// LP-relaxation branch and bound, built on the simplex solver in package lp.
//
// The paper formulates concurrent pin access optimization as a binary ILP
// (Formula (1)) and solves it with an exact solver to obtain the optimality
// reference for the Lagrangian relaxation algorithm. This package plays
// that role in the reproduction.
package ilp

import (
	"math"
	"time"

	"cpr/internal/lp"
)

// Problem is a binary integer linear program: maximize c'x subject to the
// sparse constraints, with every variable restricted to {0, 1}.
type Problem struct {
	NumVars     int
	Objective   []float64
	Constraints []lp.Constraint

	// AddUnitBounds controls whether x_j <= 1 rows are added to LP
	// relaxations. Leave it true unless every variable is already bounded
	// by the constraint system (as in the pin access assignment model,
	// where each variable appears in a sum-to-one pin constraint).
	AddUnitBounds bool
}

// NewProblem returns an empty binary ILP with n variables and unit bounds
// enabled.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, Objective: make([]float64, n), AddUnitBounds: true}
}

// AddConstraint appends a sparse constraint.
func (p *Problem) AddConstraint(terms []lp.Term, sense lp.Sense, rhs float64) {
	p.Constraints = append(p.Constraints, lp.Constraint{Terms: terms, Sense: sense, RHS: rhs})
}

// Status reports the outcome of a branch-and-bound run.
type Status int

const (
	// Optimal means the search space was exhausted; X is a proven optimum.
	Optimal Status = iota
	// Feasible means a limit was hit; X is the best incumbent found.
	Feasible
	// Infeasible means the search space was exhausted with no solution.
	Infeasible
	// Limit means a limit was hit before any feasible solution was found.
	Limit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	default:
		return "limit"
	}
}

// Config bounds the branch-and-bound search.
//
//keypurity:options
type Config struct {
	// MaxNodes caps the number of explored nodes (0 = no cap).
	MaxNodes int
	// TimeLimit caps wall-clock time (0 = no cap).
	TimeLimit time.Duration
	// InitialSolution optionally warm-starts the incumbent. It must be
	// feasible; infeasible warm starts are ignored.
	InitialSolution []bool
}

// Result is the outcome of Solve.
type Result struct {
	Status    Status
	X         []bool
	Objective float64
	// Nodes is the number of branch-and-bound nodes processed.
	Nodes int
	// RootBound is the LP relaxation optimum at the root.
	RootBound float64
}

const intTol = 1e-6

// Solve runs best-effort exact branch and bound on the problem.
func Solve(p *Problem, cfg Config) Result {
	s := &solver{p: p, cfg: cfg, incumbentObj: math.Inf(-1)}
	if cfg.TimeLimit > 0 {
		//cprlint:keypurity deadline arming for TimeLimit enforcement; TimeLimit>0 configs are excluded from content addressing (SolverConfig.Cacheable)
		s.deadline = time.Now().Add(cfg.TimeLimit)
	}
	if cfg.InitialSolution != nil && len(cfg.InitialSolution) == p.NumVars &&
		feasible(p, cfg.InitialSolution) {
		s.incumbent = append([]bool(nil), cfg.InitialSolution...)
		s.incumbentObj = objectiveOf(p, cfg.InitialSolution)
	}

	root := make([]int8, p.NumVars)
	for i := range root {
		root[i] = -1
	}
	s.branch(root, true)

	res := Result{Nodes: s.nodes, RootBound: s.rootBound}
	switch {
	case s.incumbent == nil && s.hitLimit:
		res.Status = Limit
	case s.incumbent == nil:
		res.Status = Infeasible
	case s.hitLimit:
		res.Status = Feasible
		res.X = s.incumbent
		res.Objective = s.incumbentObj
	default:
		res.Status = Optimal
		res.X = s.incumbent
		res.Objective = s.incumbentObj
	}
	return res
}

type solver struct {
	p            *Problem
	cfg          Config
	deadline     time.Time
	nodes        int
	hitLimit     bool
	incumbent    []bool
	incumbentObj float64
	rootBound    float64
}

// branch explores the subtree rooted at the given fixing vector
// (-1 free, 0, 1). isRoot records the relaxation bound for reporting.
func (s *solver) branch(fixed []int8, isRoot bool) {
	if s.hitLimit {
		return
	}
	if s.cfg.MaxNodes > 0 && s.nodes >= s.cfg.MaxNodes {
		s.hitLimit = true
		return
	}
	//cprlint:keypurity deadline polling for TimeLimit enforcement; TimeLimit>0 configs are excluded from content addressing (SolverConfig.Cacheable)
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		s.hitLimit = true
		return
	}
	s.nodes++

	relax, varMap, fixedObj, ok := s.reducedLP(fixed)
	if !ok {
		return // fixings already violate a constraint
	}
	if relax.NumVars == 0 {
		// Fully fixed: fixedObj is the node value.
		s.offerSolution(fixed, fixedObj)
		if isRoot {
			s.rootBound = fixedObj
		}
		return
	}
	sol := lp.Solve(relax)
	if sol.Status == lp.Infeasible {
		return
	}
	if sol.Status != lp.Optimal {
		// Unbounded cannot occur with unit bounds; iteration limit is
		// treated as a node we cannot bound, so explore by branching on
		// the first free variable.
		s.branchOnVar(fixed, firstFree(fixed))
		return
	}
	bound := sol.Objective + fixedObj
	if isRoot {
		s.rootBound = bound
	}
	if bound <= s.incumbentObj+1e-9 {
		return // cannot improve the incumbent
	}
	// Integral relaxation?
	fracVar, fracDist := -1, -1.0
	for j, v := range sol.X {
		d := math.Abs(v - math.Round(v))
		if d > intTol && d > fracDist {
			fracDist = d
			fracVar = j
		}
	}
	if fracVar < 0 {
		full := append([]int8(nil), fixed...)
		for j, v := range sol.X {
			if math.Round(v) >= 0.5 {
				full[varMap[j]] = 1
			} else {
				full[varMap[j]] = 0
			}
		}
		s.offerSolution(full, bound)
		return
	}
	s.branchOnVar(fixed, varMap[fracVar])
}

func (s *solver) branchOnVar(fixed []int8, v int) {
	if v < 0 {
		return
	}
	child := append([]int8(nil), fixed...)
	child[v] = 1
	s.branch(child, false)
	child2 := append([]int8(nil), fixed...)
	child2[v] = 0
	s.branch(child2, false)
}

func firstFree(fixed []int8) int {
	for j, f := range fixed {
		if f == -1 {
			return j
		}
	}
	return -1
}

// offerSolution converts a fully fixed vector into a candidate incumbent.
// Free variables in the vector are treated as 0.
func (s *solver) offerSolution(fixed []int8, obj float64) {
	x := make([]bool, len(fixed))
	for j, f := range fixed {
		x[j] = f == 1
	}
	if !feasible(s.p, x) {
		return
	}
	exact := objectiveOf(s.p, x)
	_ = obj
	if exact > s.incumbentObj {
		s.incumbentObj = exact
		s.incumbent = x
	}
}

// reducedLP builds the LP relaxation with fixed variables substituted out.
// varMap maps reduced variable indices back to original indices. ok is
// false when a fully fixed constraint is already violated.
func (s *solver) reducedLP(fixed []int8) (relax *lp.Problem, varMap []int, fixedObj float64, ok bool) {
	p := s.p
	varMap = make([]int, 0, p.NumVars)
	inverse := make([]int, p.NumVars)
	for j := range inverse {
		inverse[j] = -1
	}
	for j := 0; j < p.NumVars; j++ {
		switch fixed[j] {
		case -1:
			inverse[j] = len(varMap)
			varMap = append(varMap, j)
		case 1:
			fixedObj += p.Objective[j]
		}
	}
	relax = lp.NewProblem(len(varMap))
	relax.Deadline = s.deadline
	for rj, oj := range varMap {
		relax.Objective[rj] = p.Objective[oj]
	}
	for _, c := range p.Constraints {
		var terms []lp.Term
		rhs := c.RHS
		for _, tm := range c.Terms {
			switch fixed[tm.Var] {
			case -1:
				terms = append(terms, lp.Term{Var: inverse[tm.Var], Coef: tm.Coef})
			case 1:
				rhs -= tm.Coef
			}
		}
		if len(terms) == 0 {
			switch c.Sense {
			case lp.LE:
				if rhs < -1e-9 {
					return nil, nil, 0, false
				}
			case lp.GE:
				if rhs > 1e-9 {
					return nil, nil, 0, false
				}
			case lp.EQ:
				if math.Abs(rhs) > 1e-9 {
					return nil, nil, 0, false
				}
			}
			continue
		}
		relax.AddConstraint(terms, c.Sense, rhs)
	}
	if p.AddUnitBounds {
		for rj := range varMap {
			relax.AddConstraint([]lp.Term{{Var: rj, Coef: 1}}, lp.LE, 1)
		}
	}
	return relax, varMap, fixedObj, true
}

// feasible reports whether a binary vector satisfies every constraint.
func feasible(p *Problem, x []bool) bool {
	for _, c := range p.Constraints {
		lhs := 0.0
		for _, tm := range c.Terms {
			if x[tm.Var] {
				lhs += tm.Coef
			}
		}
		switch c.Sense {
		case lp.LE:
			if lhs > c.RHS+1e-9 {
				return false
			}
		case lp.GE:
			if lhs < c.RHS-1e-9 {
				return false
			}
		case lp.EQ:
			if math.Abs(lhs-c.RHS) > 1e-9 {
				return false
			}
		}
	}
	return true
}

// objectiveOf returns c'x for a binary vector.
func objectiveOf(p *Problem, x []bool) float64 {
	obj := 0.0
	for j, set := range x {
		if set {
			obj += p.Objective[j]
		}
	}
	return obj
}
