package pipeline

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"cpr/internal/assign"
	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/pinaccess"
	"cpr/internal/router"
)

func samplePanelArtifact(key string) *PanelArtifact {
	return &PanelArtifact{
		Panel: 3,
		Key:   key,
		Intervals: &IntervalSet{Set: &pinaccess.Set{
			Intervals: []pinaccess.Interval{
				{ID: 0, NetID: 7, Track: 12, Span: geom.Interval{Lo: 4, Hi: 9}, PinIDs: []int{2}, MinForPin: 2},
				{ID: 1, NetID: 7, Track: 13, Span: geom.Interval{Lo: 0, Hi: 5}, PinIDs: []int{2, 5}, MinForPin: -1},
			},
			PinIDs: []int{2, 5},
			ByPin:  map[int][]int{2: {0, 1}, 5: {1}},
		}},
		Assignment: &Assignment{
			Solution: &assign.Solution{
				Selected:   []bool{true, false},
				ByPin:      map[int]int{2: 0},
				Objective:  12.625, // exact binary fraction: survives any float codec
				Violations: 0,
			},
			Converged: true,
		},
		NumConflicts: 4,
	}
}

func sampleRouteArtifact(key string) *RouteArtifact {
	return &RouteArtifact{
		Region: 1,
		Key:    key,
		Nets:   []int{4, 9},
		Names:  []string{"net4", "net9"},
		Sigs:   []string{strings.Repeat("a", 64), strings.Repeat("b", 64)},
		Routes: []*router.NetRoute{
			{
				NetID:   4,
				Nodes:   []grid.NodeID{10, 11, 12},
				Edges:   []grid.Edge{{From: 10, To: 11}, {From: 11, To: 12}},
				Virtual: []grid.NodeID{13},
				Routed:  true,
			},
			{NetID: 9, Routed: false, FailReason: "congestion"},
		},
		Summary: router.RegionSummary{Nets: 2, InitialCongested: 5, NegotiationIters: 3, CongestionUnrouted: 1},
	}
}

func TestPanelArtifactRoundtrip(t *testing.T) {
	key := strings.Repeat("1", 64)
	a := samplePanelArtifact(key)
	data, err := MarshalPanelArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := MarshalPanelArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("panel encoding is not deterministic")
	}
	got, err := UnmarshalPanelArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("roundtrip mismatch:\ngot  %+v\nwant %+v", got, a)
	}
}

func TestRouteArtifactRoundtrip(t *testing.T) {
	key := strings.Repeat("2", 64)
	a := sampleRouteArtifact(key)
	data, err := MarshalRouteArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalRouteArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("roundtrip mismatch:\ngot  %+v\nwant %+v", got, a)
	}
}

func TestCodecRejectsKeylessArtifacts(t *testing.T) {
	if _, err := MarshalPanelArtifact(samplePanelArtifact("")); err == nil {
		t.Fatal("keyless panel artifact was encoded")
	}
	if _, err := MarshalRouteArtifact(sampleRouteArtifact("")); err == nil {
		t.Fatal("keyless route artifact was encoded")
	}
	if _, err := MarshalPanelArtifact(nil); err == nil {
		t.Fatal("nil panel artifact was encoded")
	}
	if _, err := MarshalRouteArtifact(nil); err == nil {
		t.Fatal("nil route artifact was encoded")
	}
}

func TestCodecRejectsVersionSkew(t *testing.T) {
	data, err := MarshalPanelArtifact(samplePanelArtifact(strings.Repeat("3", 64)))
	if err != nil {
		t.Fatal(err)
	}
	skewed := bytes.Replace(data, []byte(`{"v":1`), []byte(`{"v":99`), 1)
	if _, err := UnmarshalPanelArtifact(skewed); err == nil {
		t.Fatal("panel block with a future version was decoded")
	}
	rdata, err := MarshalRouteArtifact(sampleRouteArtifact(strings.Repeat("4", 64)))
	if err != nil {
		t.Fatal(err)
	}
	rskewed := bytes.Replace(rdata, []byte(`{"v":1`), []byte(`{"v":99`), 1)
	if _, err := UnmarshalRouteArtifact(rskewed); err == nil {
		t.Fatal("route block with a future version was decoded")
	}
	if _, err := UnmarshalPanelArtifact([]byte("not json")); err == nil {
		t.Fatal("garbage block was decoded")
	}
}
