package main

import (
	"os"
	"path/filepath"
	"testing"

	"cpr/internal/analysis"
	"cpr/internal/analysis/all"
)

// writeModule lays out a throwaway Go module for Lint to chew on.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLintFindsSortsAndRelativizes(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": `package a

import "sync"

type Guarded struct {
	mu sync.Mutex
	n  int
}

func Copy(g Guarded) int { return g.n }

func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
`,
	})
	findings, _, err := Lint(dir, []string{"./..."}, all.Analyzers(), "")
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %+v", len(findings), findings)
	}
	var names []string
	for _, f := range findings {
		names = append(names, f.Analyzer)
		if f.File != filepath.Join("a", "a.go") {
			t.Errorf("file not module-relative: %q", f.File)
		}
	}
	// Sorted by position: the mutexcopy param (line 10) precedes the
	// maporder float accumulation (line 14).
	if names[0] != "mutexcopy" || names[1] != "maporder" {
		t.Errorf("findings out of order: %v", names)
	}
	if findings[0].Line >= findings[1].Line {
		t.Errorf("not sorted by line: %d then %d", findings[0].Line, findings[1].Line)
	}
}

func TestLintSuppressionsApplyAndAreValidated(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"b/b.go": `package b

func SumA(m map[string]float64) float64 {
	var s float64
	//cprlint:ordered single-entry map in every caller
	for _, v := range m {
		s += v
	}
	return s
}

func SumB(m map[string]float64) float64 {
	var s float64
	//cprlint:maporder
	for _, v := range m {
		s += v
	}
	return s
}
`,
	})
	findings, _, err := Lint(dir, []string{"./..."}, all.Analyzers(), "")
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	// SumA is silenced. SumB's reason-less suppression does not apply, so
	// both the maporder finding and the bad-suppression finding survive.
	var analyzers []string
	for _, f := range findings {
		analyzers = append(analyzers, f.Analyzer)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings %v, want 2", len(findings), analyzers)
	}
	seen := map[string]bool{}
	for _, a := range analyzers {
		seen[a] = true
	}
	if !seen["maporder"] || !seen["cprlint"] {
		t.Errorf("want one maporder and one cprlint finding, got %v", analyzers)
	}
}

func TestLintCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"c/c.go": `package c

func Add(a, b int) int { return a + b }
`,
	})
	findings, _, err := Lint(dir, []string{"./..."}, all.Analyzers(), "")
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	if len(findings) != 0 {
		t.Fatalf("clean module produced findings: %+v", findings)
	}
}

func TestSelectAnalyzers(t *testing.T) {
	names := func(as []*analysis.Analyzer) []string {
		var out []string
		for _, a := range as {
			out = append(out, a.Name)
		}
		return out
	}

	full, err := selectAnalyzers("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(all.Analyzers()) {
		t.Errorf("default selection: got %v", names(full))
	}

	only, err := selectAnalyzers("maporder,nondeterm", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := names(only); len(got) != 2 || got[0] != "maporder" || got[1] != "nondeterm" {
		t.Errorf("-enable selection wrong: %v", got)
	}

	without, err := selectAnalyzers("", "mutexcopy")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names(without) {
		if n == "mutexcopy" {
			t.Error("-disable did not drop mutexcopy")
		}
	}
	if len(without) != len(all.Analyzers())-1 {
		t.Errorf("-disable selection wrong: %v", names(without))
	}

	if _, err := selectAnalyzers("nosuch", ""); err == nil {
		t.Error("unknown -enable name must error")
	}
	if _, err := selectAnalyzers("", "nosuch"); err == nil {
		t.Error("unknown -disable name must error")
	}
	if _, err := selectAnalyzers("maporder", "maporder"); err == nil {
		t.Error("selecting nothing must error")
	}
}
