package core

import (
	"encoding/json"
	"fmt"

	"cpr/internal/metrics"
	"cpr/internal/pipeline"
)

// Design-level block codec: serializes a whole RunResult so a peer's
// finished run can answer another node's identical submission without
// recomputation (the design level of the cache stack, DESIGN.md §4g).
//
// Router is deliberately not serialized. Every consumer of a cached
// design-level result — the job wire format and Rerun baselines —
// reads only Mode, Metrics, PinOpt, Incremental, and Artifacts; the
// raw router state is per-process scratch. A decoded result therefore
// has Router == nil, exactly like a result restored from the in-memory
// design cache after its run's router was released.

// resultVersion is the design-level block format version. Bump whenever
// RunResult or any serialized component changes shape; mismatches decode
// as errors and degrade to recomputes.
const resultVersion = 1

// resultEnvelope is the wire shape of one design-level block.
type resultEnvelope struct {
	V           int                   `json:"v"`
	Mode        Mode                  `json:"mode"`
	PinOpt      *PinOptReport         `json:"pin_opt,omitempty"`
	Metrics     metrics.Routing       `json:"metrics"`
	Artifacts   *pipeline.ArtifactSet `json:"artifacts,omitempty"`
	Incremental *IncrementalStats     `json:"incremental,omitempty"`
}

// EncodeResult encodes a RunResult as a design-level block. Results of
// eco-fast reruns carry keyless route artifacts; they are encodable
// (the design key itself embeds the rerun mode) but their keyless
// artifacts stay unservable at the panel/route levels.
func EncodeResult(r *RunResult) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("core: refusing to encode nil result")
	}
	return json.Marshal(resultEnvelope{
		V:           resultVersion,
		Mode:        r.Mode,
		PinOpt:      r.PinOpt,
		Metrics:     r.Metrics,
		Artifacts:   r.Artifacts,
		Incremental: r.Incremental,
	})
}

// DecodeResult decodes a design-level block. The returned result has
// Router == nil (see the package comment above).
func DecodeResult(data []byte) (*RunResult, error) {
	var env resultEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("core: decoding result block: %w", err)
	}
	if env.V != resultVersion {
		return nil, fmt.Errorf("core: result block version %d, want %d", env.V, resultVersion)
	}
	return &RunResult{
		Mode:        env.Mode,
		PinOpt:      env.PinOpt,
		Metrics:     env.Metrics,
		Artifacts:   env.Artifacts,
		Incremental: env.Incremental,
	}, nil
}
