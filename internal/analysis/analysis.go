// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough driver surface to write
// project-specific static checks as composable Analyzer values and run
// them from cmd/cprlint and from analysistest golden tests.
//
// The x/tools module is deliberately not imported — the repo builds with
// the standard library only — but the shapes (Analyzer, Pass, Diagnostic)
// mirror x/tools so the analyzers could be ported to a stock multichecker
// with mechanical edits.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// //cprlint: suppression comments. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description shown by cprlint -list.
	Doc string
	// SuppressAliases are extra names accepted in suppression comments
	// (e.g. maporder accepts the documented //cprlint:ordered form).
	SuppressAliases []string
	// Run executes the check on one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// Analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files is the package's parsed syntax (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info

	// Report delivers one finding. Drivers install it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// FuncOf resolves a call expression's callee to a *types.Func, looking
// through parentheses. It returns nil for calls through function values,
// type conversions, and builtins — the cases where no static callee
// exists.
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ObjectOf resolves an expression to the variable it names, looking
// through parentheses: identifiers and selector expressions resolve to
// their *types.Var; everything else (index expressions, dereferences,
// calls) yields nil.
func ObjectOf(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		if v == nil {
			v, _ = info.Defs[x].(*types.Var)
		}
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v
	}
	return nil
}

// IsFloat reports whether t's underlying type is a floating point type.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
