// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough driver surface to write
// project-specific static checks as composable Analyzer values and run
// them from cmd/cprlint and from analysistest golden tests.
//
// The x/tools module is deliberately not imported — the repo builds with
// the standard library only — but the shapes (Analyzer, Pass, Diagnostic)
// mirror x/tools so the analyzers could be ported to a stock multichecker
// with mechanical edits.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// //cprlint: suppression comments. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description shown by cprlint -list.
	Doc string
	// SuppressAliases are extra names accepted in suppression comments
	// (e.g. maporder accepts the documented //cprlint:ordered form).
	SuppressAliases []string
	// Requires lists analyzers whose facts this one imports. The engine
	// runs the transitive closure of Requires over every package —
	// dependencies first — before this analyzer sees a target package,
	// so required facts are always complete when Run executes.
	Requires []*Analyzer
	// FactTypes declares the fact types this analyzer exports, as nil
	// pointer prototypes (e.g. (*Summary)(nil)). An analyzer with a
	// non-empty FactTypes is a fact producer: the engine runs it over
	// dependency packages, not just analysis targets, and persists its
	// output in the facts cache.
	FactTypes []Fact
	// Run executes the check on one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// Analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files is the package's parsed syntax (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info

	// Facts is the run-wide fact store. Drivers that execute analyzers
	// with Requires/FactTypes install it; it may be nil under the legacy
	// single-package drivers, in which case the fact methods are no-ops.
	Facts *FactStore

	// Report delivers one finding. Drivers install it.
	Report func(Diagnostic)
}

// ExportObjectFact records fact f for obj under this pass's analyzer.
// obj must belong to the package being analyzed (facts flow from
// dependencies to dependents, never sideways).
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.Facts == nil {
		return
	}
	if obj != nil && obj.Pkg() != nil && obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("analysis: %s exported a fact for %s, which is outside package %s",
			p.Analyzer.Name, obj.Name(), p.Pkg.Path()))
	}
	p.Facts.Export(p.Analyzer.Name, obj, f)
}

// ExportPackageFact records a package-level fact for the package being
// analyzed.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.Facts == nil {
		return
	}
	p.Facts.ExportPackage(p.Analyzer.Name, p.Pkg.Path(), f)
}

// ImportObjectFact copies the fact exported for obj by `from` — which
// must be this analyzer or one of its Requires — into ptr and reports
// whether one was found. Restricting imports to declared requirements is
// what keeps analyzers isolated: facts of an analyzer you did not
// declare are invisible even when another run left them in the store.
func (p *Pass) ImportObjectFact(from *Analyzer, obj types.Object, ptr Fact) bool {
	if p.Facts == nil || !p.mayImport(from) {
		return false
	}
	return p.Facts.Import(from.Name, obj, ptr)
}

// ImportObjectFactByName is ImportObjectFact addressed by package path
// and ObjectKey, for objects whose defining package was summarized from
// the facts cache and has no live types.Object in this process.
func (p *Pass) ImportObjectFactByName(from *Analyzer, pkgPath, objKey string, ptr Fact) bool {
	if p.Facts == nil || !p.mayImport(from) {
		return false
	}
	return p.Facts.ImportByName(from.Name, pkgPath, objKey, ptr)
}

// ImportPackageFact copies the package-level fact exported for pkgPath
// by `from` into ptr.
func (p *Pass) ImportPackageFact(from *Analyzer, pkgPath string, ptr Fact) bool {
	if p.Facts == nil || !p.mayImport(from) {
		return false
	}
	return p.Facts.ImportPackage(from.Name, pkgPath, ptr)
}

// mayImport reports whether from's facts are visible to this pass.
func (p *Pass) mayImport(from *Analyzer) bool {
	if from == nil {
		return false
	}
	if from == p.Analyzer {
		return true
	}
	for _, r := range p.Analyzer.Requires {
		if r == from {
			return true
		}
	}
	return false
}

// Closure returns the given analyzers plus the transitive closure of
// their Requires, ordered so every analyzer appears after everything it
// requires — the order the engine runs them in on each package.
func Closure(as []*Analyzer) []*Analyzer {
	var out []*Analyzer
	seen := make(map[*Analyzer]bool)
	var visit func(a *Analyzer)
	visit = func(a *Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, r := range a.Requires {
			visit(r)
		}
		out = append(out, a)
	}
	for _, a := range as {
		visit(a)
	}
	return out
}

// Producers filters as down to fact-producing analyzers (FactTypes
// non-empty) — the subset the engine runs over dependency packages.
func Producers(as []*Analyzer) []*Analyzer {
	var out []*Analyzer
	for _, a := range as {
		if len(a.FactTypes) > 0 {
			out = append(out, a)
		}
	}
	return out
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// FuncOf resolves a call expression's callee to a *types.Func, looking
// through parentheses. It returns nil for calls through function values,
// type conversions, and builtins — the cases where no static callee
// exists.
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ObjectOf resolves an expression to the variable it names, looking
// through parentheses: identifiers and selector expressions resolve to
// their *types.Var; everything else (index expressions, dereferences,
// calls) yields nil.
func ObjectOf(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		if v == nil {
			v, _ = info.Defs[x].(*types.Var)
		}
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v
	}
	return nil
}

// IsFloat reports whether t's underlying type is a floating point type.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
