package cpr_test

import (
	"fmt"

	"cpr"
)

// ExampleRun routes a tiny hand-built design with the CPR flow.
func ExampleRun() {
	d := cpr.NewDesign("tiny", 30, 10, cpr.DefaultTechnology())
	n := d.AddNet("n0")
	d.AddPin("p0", n, cpr.Rect{X0: 3, Y0: 4, X1: 3, Y1: 4})
	d.AddPin("p1", n, cpr.Rect{X0: 24, Y0: 4, X1: 24, Y1: 4})
	if err := d.Validate(); err != nil {
		fmt.Println("invalid:", err)
		return
	}
	res, err := cpr.Run(d, cpr.Options{Mode: cpr.ModeCPR})
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("routed %d/%d nets with %d vias\n",
		res.Metrics.RoutedNets, res.Metrics.TotalNets, res.Metrics.Vias)
	// Output:
	// routed 1/1 nets with 2 vias
}

// ExampleBuildAssignmentModel solves one panel's weighted interval
// assignment with both solvers.
func ExampleBuildAssignmentModel() {
	d := cpr.NewDesign("panel", 24, 10, cpr.DefaultTechnology())
	a := d.AddNet("a")
	b := d.AddNet("b")
	d.AddPin("a1", a, cpr.Rect{X0: 2, Y0: 3, X1: 2, Y1: 3})
	d.AddPin("a2", a, cpr.Rect{X0: 20, Y0: 3, X1: 20, Y1: 3})
	d.AddPin("b1", b, cpr.Rect{X0: 10, Y0: 3, X1: 10, Y1: 3})
	d.AddPin("b2", b, cpr.Rect{X0: 10, Y0: 6, X1: 10, Y1: 6})
	if err := d.Validate(); err != nil {
		fmt.Println("invalid:", err)
		return
	}
	model, err := cpr.BuildAssignmentModel(d, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	ilpSol, err := cpr.SolveILP(model, cpr.ILPConfig{})
	if err != nil {
		fmt.Println(err)
		return
	}
	lr := cpr.SolveLR(model, cpr.LRConfig{})
	fmt.Printf("pins: %d, candidate intervals: %d\n", model.NumPins(), model.NumIntervals())
	fmt.Printf("LR within %.0f%% of the ILP optimum\n",
		100*lr.Solution.Objective/ilpSol.Objective)
	// Output:
	// pins: 4, candidate intervals: 7
	// LR within 100% of the ILP optimum
}

// ExampleGenerateCircuit shows the Table 2 benchmark registry.
func ExampleGenerateCircuit() {
	spec, err := cpr.CircuitByName("ecc")
	if err != nil {
		fmt.Println(err)
		return
	}
	d, err := cpr.GenerateCircuit(spec)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: %d nets on a %dx%d grid\n", d.Name, len(d.Nets), d.Width, d.Height)
	// Output:
	// ecc: 1671 nets on a 420x420 grid
}
