package conflict

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"cpr/internal/geom"
	"cpr/internal/pinaccess"
)

// mk builds a bare interval list on one track from spans.
func mk(track int, spans ...geom.Interval) []pinaccess.Interval {
	ivs := make([]pinaccess.Interval, len(spans))
	for i, s := range spans {
		ivs[i] = pinaccess.Interval{ID: i, Track: track, Span: s, MinForPin: -1}
	}
	return ivs
}

func TestNoConflicts(t *testing.T) {
	ivs := mk(0, geom.Interval{Lo: 0, Hi: 2}, geom.Interval{Lo: 4, Hi: 6}, geom.Interval{Lo: 8, Hi: 9})
	if sets := Detect(ivs); len(sets) != 0 {
		t.Errorf("disjoint intervals produced %d conflict sets", len(sets))
	}
}

func TestSimplePairConflict(t *testing.T) {
	ivs := mk(0, geom.Interval{Lo: 0, Hi: 5}, geom.Interval{Lo: 3, Hi: 8})
	sets := Detect(ivs)
	if len(sets) != 1 {
		t.Fatalf("got %d sets, want 1", len(sets))
	}
	if !reflect.DeepEqual(sets[0].IDs, []int{0, 1}) {
		t.Errorf("IDs = %v", sets[0].IDs)
	}
	if sets[0].Common != (geom.Interval{Lo: 3, Hi: 5}) {
		t.Errorf("Common = %v, want [3,5]", sets[0].Common)
	}
}

func TestChainProducesTwoMaximalSets(t *testing.T) {
	// A=[0,5], B=[3,10], C=[6,8]: cliques {A,B} and {B,C}.
	ivs := mk(0,
		geom.Interval{Lo: 0, Hi: 5},
		geom.Interval{Lo: 3, Hi: 10},
		geom.Interval{Lo: 6, Hi: 8})
	sets := Detect(ivs)
	if len(sets) != 2 {
		t.Fatalf("got %d sets, want 2: %+v", len(sets), sets)
	}
	if !reflect.DeepEqual(sets[0].IDs, []int{0, 1}) || !reflect.DeepEqual(sets[1].IDs, []int{1, 2}) {
		t.Errorf("sets = %+v", sets)
	}
}

func TestNestedIntervals(t *testing.T) {
	// Outer [0,10] with two disjoint inner intervals: two maximal cliques.
	ivs := mk(0,
		geom.Interval{Lo: 0, Hi: 10},
		geom.Interval{Lo: 2, Hi: 3},
		geom.Interval{Lo: 5, Hi: 6})
	sets := Detect(ivs)
	if len(sets) != 2 {
		t.Fatalf("got %d sets, want 2: %+v", len(sets), sets)
	}
}

func TestTracksAreIndependent(t *testing.T) {
	ivs := []pinaccess.Interval{
		{ID: 0, Track: 0, Span: geom.Interval{Lo: 0, Hi: 5}, MinForPin: -1},
		{ID: 1, Track: 1, Span: geom.Interval{Lo: 0, Hi: 5}, MinForPin: -1},
	}
	if sets := Detect(ivs); len(sets) != 0 {
		t.Errorf("intervals on different tracks must not conflict: %+v", sets)
	}
}

func TestIdenticalIntervals(t *testing.T) {
	ivs := mk(0, geom.Interval{Lo: 1, Hi: 4}, geom.Interval{Lo: 1, Hi: 4}, geom.Interval{Lo: 1, Hi: 4})
	sets := Detect(ivs)
	if len(sets) != 1 || len(sets[0].IDs) != 3 {
		t.Fatalf("got %+v, want one set of 3", sets)
	}
}

// figure4Track reconstructs the flavour of paper Figure 4(b): a dense track
// where a1's five nested/stacked intervals overlap neighbours' intervals,
// producing a linear number of conflict sets.
func TestFigure4StyleTrack(t *testing.T) {
	ivs := mk(0,
		geom.Interval{Lo: 0, Hi: 6},   // Ia1_0
		geom.Interval{Lo: 0, Hi: 9},   // Ia1_1
		geom.Interval{Lo: 0, Hi: 13},  // Ia1_2
		geom.Interval{Lo: 4, Hi: 13},  // Ia1_3
		geom.Interval{Lo: 4, Hi: 9},   // Ia1_4
		geom.Interval{Lo: 8, Hi: 13},  // Id1_2
		geom.Interval{Lo: 11, Hi: 18}, // Ic_*
		geom.Interval{Lo: 15, Hi: 18}, // Id1_*
	)
	sets := Detect(ivs)
	// Linearity: at most n maximal sets.
	if len(sets) > len(ivs) {
		t.Fatalf("emitted %d sets for %d intervals; must be linear", len(sets), len(ivs))
	}
	assertSetsValid(t, ivs, sets)
}

// assertSetsValid checks the three correctness properties of the sweep:
// each set is a clique with the reported common span, every overlapping
// pair co-occurs in some set, and no set is a subset of another.
func assertSetsValid(t *testing.T, ivs []pinaccess.Interval, sets []Set) {
	t.Helper()
	for si, s := range sets {
		if len(s.IDs) < 2 {
			t.Errorf("set %d has fewer than 2 members", si)
		}
		common := ivs[s.IDs[0]].Span
		for _, id := range s.IDs[1:] {
			common = common.Intersect(ivs[id].Span)
		}
		if common.Empty() {
			t.Errorf("set %d is not a clique (empty common span)", si)
		}
		if common != s.Common {
			t.Errorf("set %d Common = %v, want %v", si, s.Common, common)
		}
	}
	// Pair coverage.
	for i := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			if ivs[i].Track != ivs[j].Track || !ivs[i].Span.Overlaps(ivs[j].Span) {
				continue
			}
			found := false
			for _, s := range sets {
				hasI, hasJ := false, false
				for _, id := range s.IDs {
					if id == i {
						hasI = true
					}
					if id == j {
						hasJ = true
					}
				}
				if hasI && hasJ {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("overlapping pair (%d,%d) not covered by any set", i, j)
			}
		}
	}
	// No subset relations (maximality between emitted sets).
	for a := range sets {
		for b := range sets {
			if a == b || sets[a].Track != sets[b].Track {
				continue
			}
			if isSubset(sets[a].IDs, sets[b].IDs) {
				t.Errorf("set %v is a subset of %v", sets[a].IDs, sets[b].IDs)
			}
		}
	}
}

func isSubset(a, b []int) bool {
	if len(a) > len(b) {
		return false
	}
	set := make(map[int]bool, len(b))
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

// bruteForceCliques computes maximal point-stabbing cliques directly.
func bruteForceCliques(ivs []pinaccess.Interval, lo, hi int) [][]int {
	var cliques [][]int
	seen := make(map[string]bool)
	for x := lo; x <= hi; x++ {
		var c []int
		for i := range ivs {
			if ivs[i].Span.Contains(x) {
				c = append(c, i)
			}
		}
		if len(c) < 2 {
			continue
		}
		key := keyOf(c)
		if !seen[key] {
			seen[key] = true
			cliques = append(cliques, c)
		}
	}
	// Drop non-maximal stabs.
	var maximal [][]int
	for i, c := range cliques {
		sub := false
		for j, d := range cliques {
			if i != j && isSubset(c, d) && len(c) < len(d) {
				sub = true
				break
			}
		}
		if !sub {
			maximal = append(maximal, c)
		}
	}
	return maximal
}

func keyOf(ids []int) string {
	b := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), ',')
	}
	return string(b)
}

// TestSweepMatchesBruteForce cross-checks the sweep against point-stabbing
// enumeration on random single-track instances.
func TestSweepMatchesBruteForce(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 2 + r.Intn(10)
			spans := make([]geom.Interval, n)
			for i := range spans {
				lo := r.Intn(20)
				spans[i] = geom.Interval{Lo: lo, Hi: lo + r.Intn(8)}
			}
			vals[0] = reflect.ValueOf(spans)
		},
	}
	prop := func(spans []geom.Interval) bool {
		ivs := mk(0, spans...)
		sets := Detect(ivs)
		want := bruteForceCliques(ivs, 0, 30)
		if len(sets) != len(want) {
			return false
		}
		gotKeys := make(map[string]bool)
		for _, s := range sets {
			gotKeys[keyOf(s.IDs)] = true
		}
		for _, c := range want {
			sort.Ints(c)
			if !gotKeys[keyOf(c)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestBuildMatrixMembership(t *testing.T) {
	ivs := mk(0,
		geom.Interval{Lo: 0, Hi: 5},
		geom.Interval{Lo: 3, Hi: 10},
		geom.Interval{Lo: 6, Hi: 8})
	m := BuildMatrix(ivs)
	if len(m.Sets) != 2 {
		t.Fatalf("sets = %d, want 2", len(m.Sets))
	}
	if !reflect.DeepEqual(m.MemberOf[0], []int{0}) ||
		!reflect.DeepEqual(m.MemberOf[1], []int{0, 1}) ||
		!reflect.DeepEqual(m.MemberOf[2], []int{1}) {
		t.Errorf("MemberOf = %v", m.MemberOf)
	}
}

func TestViolations(t *testing.T) {
	ivs := mk(0,
		geom.Interval{Lo: 0, Hi: 5},
		geom.Interval{Lo: 3, Hi: 10},
		geom.Interval{Lo: 6, Hi: 8})
	m := BuildMatrix(ivs)
	if got := m.Violations([]bool{true, true, true}); got != 2 {
		t.Errorf("Violations(all) = %d, want 2", got)
	}
	if got := m.Violations([]bool{true, false, true}); got != 0 {
		t.Errorf("Violations(0,2) = %d, want 0", got)
	}
	if got := m.Violations([]bool{false, true, true}); got != 1 {
		t.Errorf("Violations(1,2) = %d, want 1", got)
	}
}

func TestEmptyInput(t *testing.T) {
	if sets := Detect(nil); len(sets) != 0 {
		t.Error("Detect(nil) should be empty")
	}
	m := BuildMatrix(nil)
	if len(m.Sets) != 0 || m.Violations(nil) != 0 {
		t.Error("BuildMatrix(nil) should be empty")
	}
}
