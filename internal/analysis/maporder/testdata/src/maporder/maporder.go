// Package maporder is golden input for the maporder analyzer.
package maporder

import (
	"bytes"
	"fmt"
	"sort"
)

// AppendLeak appends in map order: flagged.
func AppendLeak(m map[string]int) []string {
	var names []string
	for k := range m { // want `appends to "names" in nondeterministic key order`
		names = append(names, k)
	}
	return names
}

// CollectThenSort is the blessed idiom: append then sort in the same
// block. Not flagged.
func CollectThenSort(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// CollectThenSortSlice uses sort.Slice: still order-safe.
func CollectThenSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// FloatAccumulate sums floats in map order: flagged (bit-level result
// depends on iteration order).
func FloatAccumulate(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m { // want `accumulates floating point into "total"`
		total += v
	}
	return total
}

// FloatAssignForm is the x = x + e spelling of the same bug.
func FloatAssignForm(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m { // want `accumulates floating point into "total"`
		total = total + v
	}
	return total
}

// IntAccumulate sums integers: order-independent, not flagged.
func IntAccumulate(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// KeyedWrites build another map: order-independent, not flagged.
func KeyedWrites(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// PrintLeak writes output in map order: flagged.
func PrintLeak(m map[string]int) {
	for k, v := range m { // want `writes output in nondeterministic key order`
		fmt.Println(k, v)
	}
}

// BufferLeak writes to a buffer in map order: flagged.
func BufferLeak(m map[string]int, buf *bytes.Buffer) {
	for k := range m { // want `writes output in nondeterministic key order`
		buf.WriteString(k)
	}
}

// SliceRange ranges over a slice: never flagged.
func SliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// LoopLocalScratch appends to a slice scoped inside the loop body:
// order-safe, not flagged.
func LoopLocalScratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// ClosureBody defines but does not run a closure per iteration; the
// closure's internals are out of scope for this loop.
func ClosureBody(m map[string]int) []func() float64 {
	var fns []func() float64
	//cprlint:ordered closure registration order never escapes: the slice is only counted
	for _, v := range m {
		v := v
		fns = append(fns, func() float64 {
			s := 0.0
			s += float64(v)
			return s
		})
	}
	return fns
}

// Suppressed carries a justified //cprlint:ordered comment: silenced.
func Suppressed(m map[string]int) []string {
	var names []string
	//cprlint:ordered result feeds a set comparison; order is irrelevant downstream
	for k := range m {
		names = append(names, k)
	}
	return names
}

// SuppressedInline is silenced by a same-line comment.
func SuppressedInline(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m { //cprlint:ordered compensated summation applied by caller
		total += v
	}
	return total
}

// BadSuppression has no reason text, so it does not silence anything.
func BadSuppression(m map[string]int) []string {
	var names []string
	//cprlint:ordered
	for k := range m { // want `appends to "names" in nondeterministic key order`
		names = append(names, k)
	}
	return names
}
