// Package router implements the negotiation-congestion-based
// unidirectional detailed router used by CPR (paper §4) and by the
// "routing w/o pin access optimization" baseline of [21].
//
// The router follows the PathFinder paradigm: an initial independent
// routing stage where nets are routed with congestion visible but not
// prohibitive, followed by rip-up-and-reroute iterations in which present
// congestion penalties ramp up and overused grid nodes accumulate history
// cost. Pins and seeded pin access intervals of other nets are hard
// blockages during each net's search, exactly as the paper prescribes.
//
// After negotiation, metal line-ends are extended for SADP cut mask
// friendliness and checked against line-end spacing and minimum-length
// rules; nets whose extensions violate the rules are treated as unrouted
// (paper §5: "We treat those nets introducing violations as unrouted").
//
// The routing problem is decomposed into independent regions (connected
// components of net influence rectangles, see Partition): every stage
// runs region-locally, regions run concurrently on the deterministic
// internal/parallel pool, and a region whose inputs are unchanged since a
// previous run can be spliced verbatim from that run's routes (RunPlan
// with RunOpts.Spliced) — the basis of incremental (ECO) routing.
package router

import (
	"context"
	"fmt"
	"sort"
	"time"

	"cpr/internal/assign"
	"cpr/internal/design"
	"cpr/internal/grid"
	"cpr/internal/parallel"
	"cpr/internal/pinaccess"
	"cpr/internal/tech"
	"cpr/internal/telemetry"
)

// NetOrder selects the order nets are (re)routed in.
type NetOrder int

const (
	// OrderHPWLAsc routes short nets first (default; they have the least
	// detour flexibility).
	OrderHPWLAsc NetOrder = iota
	// OrderHPWLDesc routes long nets first.
	OrderHPWLDesc
	// OrderByID routes nets in declaration order.
	OrderByID
	// OrderByPins routes high-fanout nets first.
	OrderByPins
)

func (o NetOrder) String() string {
	switch o {
	case OrderHPWLDesc:
		return "hpwl-desc"
	case OrderByID:
		return "id"
	case OrderByPins:
		return "pins"
	default:
		return "hpwl-asc"
	}
}

// Config tunes the negotiation router. Zero values take defaults.
//
//keypurity:options
type Config struct {
	// Order selects the net routing order (default OrderHPWLAsc).
	Order NetOrder

	// MaxNegotiationIters bounds rip-up-and-reroute rounds (default 12).
	MaxNegotiationIters int
	// PresentCostBase is the congestion penalty factor in the first
	// negotiation round (default 2).
	PresentCostBase float64
	// PresentCostGrowth multiplies the penalty each round (default 1.6).
	PresentCostGrowth float64
	// HistoryIncrement is added to every overused node per round
	// (default 1).
	HistoryIncrement float64
	// WindowMargin is the base search window expansion around the net
	// bounding box (default 8).
	WindowMargin int
	// WindowGrowth widens the window per negotiation round (default 4).
	WindowGrowth int
	// MaxWindowMargin caps window growth (default 32).
	MaxWindowMargin int
	// StallRounds stops negotiation after this many rounds without
	// overuse improvement; the residue is resolved by unrouting
	// (default 3).
	StallRounds int
	// SkipDRC disables the line-end extension / design rule stage
	// (used to measure raw negotiated routability).
	SkipDRC bool

	// Workers bounds how many regions route concurrently (0 selects
	// GOMAXPROCS). The internal/parallel determinism contract holds:
	// regions are independent subproblems with disjoint grid footprints
	// and the reduce is ordered, so results are byte-identical for every
	// worker count. Excluded from content-key fingerprints for the same
	// reason.
	//
	//keypurity:exempt region-level parallelism; the internal/parallel determinism contract makes route bytes identical for every worker count
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MaxNegotiationIters == 0 {
		c.MaxNegotiationIters = 12
	}
	if c.PresentCostBase == 0 {
		c.PresentCostBase = 2
	}
	if c.PresentCostGrowth == 0 {
		c.PresentCostGrowth = 1.6
	}
	if c.HistoryIncrement == 0 {
		c.HistoryIncrement = 1
	}
	if c.WindowMargin == 0 {
		c.WindowMargin = 8
	}
	if c.WindowGrowth == 0 {
		c.WindowGrowth = 4
	}
	if c.MaxWindowMargin == 0 {
		c.MaxWindowMargin = 32
	}
	if c.StallRounds == 0 {
		c.StallRounds = 3
	}
	return c
}

// Normalized returns the configuration with defaults applied — the form
// content-key fingerprints must be computed over, so that a zero config
// and an explicitly-defaulted one address the same artifacts.
func (c Config) Normalized() Config { return c.withDefaults() }

// NetRoute is the routing outcome for one net.
type NetRoute struct {
	NetID int
	// Nodes are the unique grid nodes of the route tree.
	Nodes []grid.NodeID
	// Edges are the tree edges (wires and vias), canonical order.
	Edges []grid.Edge
	// Virtual are the line-end clearance cells beyond each metal strip
	// end (extension plus half the spacing rule). They carry occupancy —
	// so negotiation spaces line-ends apart — but are not metal: they
	// contribute neither wirelength nor vias.
	Virtual []grid.NodeID
	// Routed reports whether the net is connected and rule-clean.
	Routed bool
	// FailReason explains an unrouted net ("", "search", "congestion",
	// "drc").
	FailReason string
}

// Clone returns a deep copy of the route (shared-nothing slices), so
// cached routes survive the in-place mutation the DRC and congestion
// stages apply to live route tables.
func (nr *NetRoute) Clone() *NetRoute {
	if nr == nil {
		return nil
	}
	cp := &NetRoute{NetID: nr.NetID, Routed: nr.Routed, FailReason: nr.FailReason}
	if nr.Nodes != nil {
		cp.Nodes = append([]grid.NodeID(nil), nr.Nodes...)
	}
	if nr.Edges != nil {
		cp.Edges = append([]grid.Edge(nil), nr.Edges...)
	}
	if nr.Virtual != nil {
		cp.Virtual = append([]grid.NodeID(nil), nr.Virtual...)
	}
	return cp
}

// Vias counts via edges in the route.
func (nr *NetRoute) Vias(g *grid.Graph) int {
	n := 0
	for _, e := range nr.Edges {
		if g.IsVia(e) {
			n++
		}
	}
	return n
}

// Wirelength counts wire (non-via) edges in the route.
func (nr *NetRoute) Wirelength(g *grid.Graph) int {
	n := 0
	for _, e := range nr.Edges {
		if !g.IsVia(e) {
			n++
		}
	}
	return n
}

// RegionSummary aggregates one region's counter outcomes. It carries no
// wall-clock fields by design: a summary spliced from a previous run must
// contribute zero time to the current run's Elapsed/StageElapsed (reruns
// used to double-count spliced work's prior wall clock otherwise).
type RegionSummary struct {
	// Nets is the region's member net count.
	Nets int
	// InitialCongested counts metal-congested nodes in the region after
	// the independent routing stage.
	InitialCongested int
	// InitialCongestedByLayer breaks InitialCongested down per layer.
	InitialCongestedByLayer [tech.NumLayers]int
	// NegotiationIters is the number of rip-up rounds the region ran.
	NegotiationIters int
	// CongestionUnrouted counts member nets dropped for residual overuse.
	CongestionUnrouted int
	// DRCUnrouted counts member nets dropped by the line-end rule check.
	DRCUnrouted int
}

// Result is the outcome of a full routing run.
type Result struct {
	// Routes is indexed by net ID.
	Routes []*NetRoute
	// RoutedNets counts rule-clean connected nets.
	RoutedNets int
	// Vias and Wirelength aggregate over routed nets only.
	Vias       int
	Wirelength int
	// InitialCongested is the number of congested grids after the
	// independent routing stage, before any rip-up (Figure 7(b) metric).
	InitialCongested int
	// InitialCongestedByLayer breaks InitialCongested down per layer.
	InitialCongestedByLayer [tech.NumLayers]int
	// NegotiationIters is the maximum rip-up round count over all regions.
	NegotiationIters int
	// CongestionUnrouted counts nets dropped to resolve residual overuse.
	CongestionUnrouted int
	// DRCUnrouted counts nets dropped by the line-end rule check.
	DRCUnrouted int

	// Regions is the number of independent routing regions of the plan.
	Regions int
	// RegionSummaries holds one counter summary per region, indexed by
	// region ID (spliced regions carry their previous-run summary).
	RegionSummaries []RegionSummary
	// SplicedNets and WarmNets are reuse provenance: nets spliced
	// verbatim from a previous run's region artifacts, and nets
	// warm-started from previous routes before negotiation. Provenance
	// never affects route bytes (a strict rerun is byte-identical to a
	// cold run that has both at zero).
	SplicedNets int
	WarmNets    int

	// Elapsed is the wall-clock routing time of this run only: spliced
	// regions contribute zero (their prior-run time is not re-counted).
	Elapsed time.Duration
	// StageElapsed breaks routing work into the independent routing,
	// rip-up negotiation, congestion resolution, and DRC stages, summed
	// over the regions this run actually computed. With concurrent
	// regions the sum is CPU-time-like and can exceed Elapsed.
	StageElapsed [4]time.Duration
}

// ZeroTimes clears every wall-clock field, leaving only deterministic
// content — the normal form for byte-identity comparisons and cached
// artifacts.
func (res *Result) ZeroTimes() {
	res.Elapsed = 0
	res.StageElapsed = [4]time.Duration{}
}

// Router routes one design on one grid. Create with New, optionally seed
// pin access intervals with SeedAssignment, then call Run.
type Router struct {
	d   *design.Design
	g   *grid.Graph
	cfg Config

	// seeded interval cells per net (for release/bookkeeping). Read-only
	// once routing starts, so concurrent region shards may share it.
	seededNodes map[int][]grid.NodeID
}

// New creates a router over a validated design and its grid.
func New(d *design.Design, g *grid.Graph, cfg Config) *Router {
	return &Router{d: d, g: g, cfg: cfg.withDefaults(), seededNodes: make(map[int][]grid.NodeID)}
}

// SeedAssignment reserves the assigned pin access intervals on the grid as
// net-owned partial routes. The assignment must be conflict-free (the
// output of the ILP or LR optimizer); overlapping reservations panic.
func (r *Router) SeedAssignment(set *pinaccess.Set, sol *assign.Solution) {
	// Reserve intervals in sorted ID order: seededNodes order seeds the
	// path search, so map iteration order must not reach it.
	seen := make(map[int]bool)
	var ivIDs []int
	for _, ivID := range sol.ByPin {
		if seen[ivID] {
			continue
		}
		seen[ivID] = true
		ivIDs = append(ivIDs, ivID)
	}
	sort.Ints(ivIDs)
	for _, ivID := range ivIDs {
		iv := &set.Intervals[ivID]
		for x := iv.Span.Lo; x <= iv.Span.Hi; x++ {
			id := r.g.ID(x, iv.Track, tech.M2)
			r.g.SetOwner(id, iv.NetID)
			r.seededNodes[iv.NetID] = append(r.seededNodes[iv.NetID], id)
		}
	}
}

// Run executes the full negotiation routing flow.
func (r *Router) Run() *Result {
	return r.RunCtx(context.Background())
}

// RunCtx executes the full negotiation routing flow: a cold RunPlan over
// a fresh Partition. A telemetry tracer or metrics registry carried by
// ctx adds per-stage spans, per-round negotiation spans (overuse,
// rip-ups, present-cost factor) and router metrics; telemetry is strictly
// observational, so the routing result is byte-identical with or without
// it.
func (r *Router) RunCtx(ctx context.Context) *Result {
	return r.RunPlan(ctx, r.Partition(), RunOpts{})
}

// SplicedRegion is a region reused verbatim from a previous run: the
// member routes (parallel to the region's Nets) plus the counter summary
// the region produced when it was computed.
type SplicedRegion struct {
	Routes  []*NetRoute
	Summary RegionSummary
}

// RunOpts controls a plan-based run (RunPlan).
type RunOpts struct {
	// Workers bounds region-level concurrency; 0 falls back to
	// Config.Workers (then GOMAXPROCS). Byte-identical results for every
	// value.
	Workers int
	// Spliced maps region ID -> previous-run routes to splice verbatim
	// instead of routing the region. The caller asserts (normally via
	// content keys, see pipeline.RouteRegionKey) that the region's inputs
	// are unchanged; the routes are deep-copied and their occupancy is
	// replayed onto the grid so the final grid state matches a cold run.
	Spliced map[int]*SplicedRegion
	// Warm maps net ID -> a previous route to warm-start from (eco-fast
	// reruns): usable warm routes are installed and occupied before the
	// independent routing stage, which then routes only the remaining
	// nets; negotiation covers everything, so stale warm routes are
	// ripped up normally. Routes are deep-copied; a route that is no
	// longer enterable on the current grid is silently dropped.
	Warm map[int]*NetRoute
	// SkipSpliceSeeding disables replaying spliced and warm routes'
	// occupancy onto the grid. Fault-injection knob for the equivalence
	// test suite: without congestion seeding, fresh nets route straight
	// through reused metal and the result fails verification. Never set
	// it in production flows.
	SkipSpliceSeeding bool
}

// shardOutcome is one computed region's result bundle.
type shardOutcome struct {
	summary RegionSummary
	stage   [4]time.Duration
	warm    int
}

// RunPlan executes the negotiation routing flow over an explicit region
// plan, optionally splicing unchanged regions and warm-starting nets from
// a previous run. Regions route concurrently (opts.Workers) with
// byte-identical results for every worker count; a run with empty opts is
// exactly the cold flow.
func (r *Router) RunPlan(ctx context.Context, plan *Plan, opts RunOpts) *Result {
	start := now()
	res := &Result{
		Routes:          make([]*NetRoute, len(r.d.Nets)),
		Regions:         len(plan.Regions),
		RegionSummaries: make([]RegionSummary, len(plan.Regions)),
	}

	// Splice reused regions first: verbatim route copies, with occupancy
	// replayed so the grid ends byte-identical to a cold run's grid. The
	// copies carry the congestion seed for any neighbouring recomputation
	// — though by construction no computed region can reach them.
	var computed []*Region
	for _, rg := range plan.Regions {
		sp := opts.Spliced[rg.ID]
		if sp == nil {
			computed = append(computed, rg)
			continue
		}
		if len(sp.Routes) != len(rg.Nets) {
			panic(fmt.Sprintf("router: spliced region %d has %d routes for %d nets",
				rg.ID, len(sp.Routes), len(rg.Nets)))
		}
		for i, netID := range rg.Nets {
			nr := sp.Routes[i].Clone()
			if nr.NetID != netID {
				panic(fmt.Sprintf("router: spliced region %d: route for net %d spliced at net %d",
					rg.ID, nr.NetID, netID))
			}
			res.Routes[netID] = nr
			if !opts.SkipSpliceSeeding {
				r.occupy(nr)
			}
		}
		res.RegionSummaries[rg.ID] = sp.Summary
		res.SplicedNets += len(rg.Nets)
	}

	// Route the remaining regions concurrently. Shards write to disjoint
	// net indices and disjoint grid footprints; per-slot outcomes are
	// reduced in plan order, so every worker count produces identical
	// bytes.
	workers := opts.Workers
	if workers == 0 {
		workers = r.cfg.Workers
	}
	outcomes := make([]shardOutcome, len(computed))
	parallel.ForEach(parallel.Resolve(workers), len(computed), func(slot int) {
		rg := computed[slot]
		sh := &shard{
			Router:  r,
			region:  rg,
			routes:  res.Routes,
			seedOcc: !opts.SkipSpliceSeeding,
		}
		if len(opts.Warm) > 0 {
			for _, netID := range rg.Nets {
				if w := opts.Warm[netID]; w != nil && w.NetID == netID {
					if sh.warm == nil {
						sh.warm = make(map[int]*NetRoute)
					}
					sh.warm[netID] = w.Clone()
				}
			}
		}
		outcomes[slot] = sh.run(ctx)
	})
	for slot, oc := range outcomes {
		res.RegionSummaries[computed[slot].ID] = oc.summary
		for i := range oc.stage {
			res.StageElapsed[i] += oc.stage[i]
		}
		res.WarmNets += oc.warm
	}

	// Merge region counters in region-ID order (spliced and computed
	// alike), then recompute the global totals from the final routes.
	for _, sum := range res.RegionSummaries {
		res.InitialCongested += sum.InitialCongested
		for z := range sum.InitialCongestedByLayer {
			res.InitialCongestedByLayer[z] += sum.InitialCongestedByLayer[z]
		}
		if sum.NegotiationIters > res.NegotiationIters {
			res.NegotiationIters = sum.NegotiationIters
		}
		res.CongestionUnrouted += sum.CongestionUnrouted
		res.DRCUnrouted += sum.DRCUnrouted
	}
	for _, nr := range res.Routes {
		if nr != nil && nr.Routed {
			res.RoutedNets++
			res.Vias += nr.Vias(r.g)
			res.Wirelength += nr.Wirelength(r.g)
		}
	}

	if reg := telemetry.RegistryFrom(ctx); reg != nil {
		reg.Histogram("cpr_router_negotiation_rounds", "Rip-up-and-reroute rounds per routing run.",
			telemetry.DefCountBuckets).Observe(float64(res.NegotiationIters))
	}
	res.Elapsed = since(start)
	return res
}

// shard is the per-region routing worker: it runs every stage of the
// negotiation flow restricted to one region's member nets. Shards of
// different regions share the grid but have provably disjoint read/write
// footprints, so they run concurrently without synchronization.
type shard struct {
	*Router
	region *Region
	// routes is the run's global route table; the shard reads and writes
	// only its member indices.
	routes []*NetRoute
	// avoid holds temporarily forbidden nodes during DRC-aware reroutes
	// (other nets' extended line-end clearance zones); nil outside the
	// DRC stage. Also carries the sequential baseline's clearance zones.
	avoid map[grid.NodeID]bool
	// warm maps member net IDs to deep-copied previous routes to
	// warm-start from.
	warm map[int]*NetRoute
	// seedOcc replays warm routes' occupancy (false only under the
	// RunOpts.SkipSpliceSeeding fault injection).
	seedOcc bool
}

// wholeShard wraps the router in a single shard spanning every net
// (sequential-baseline and test helper; no region decomposition).
func (r *Router) wholeShard(routes []*NetRoute) *shard {
	allNets := make([]int, len(r.d.Nets))
	for i := range allNets {
		allNets[i] = i
	}
	return &shard{Router: r, region: &Region{Nets: allNets}, routes: routes, seedOcc: true}
}

// run executes the four routing stages region-locally. Its output is
// what a RouteArtifact captures and reuses, so it is a cache entry of
// the stage scope: every router.Config field it reads must be covered by
// pipeline.RouterFingerprint or exempted on the field.
//
//keypurity:entry stage
func (s *shard) run(ctx context.Context) shardOutcome {
	var oc shardOutcome
	oc.summary.Nets = len(s.region.Nets)
	order := s.netOrderOf(s.region.Nets)

	// Stage 1: independent routing. Congestion is visible at zero present
	// penalty, so nets route as if alone (other nets' pins/intervals are
	// still hard blockages). Warm-started regions instead install every
	// usable warm route first and route the remaining nets with the
	// present-cost penalty already on: the warm routes are a converged
	// solution, so fresh nets that steer around their occupancy from the
	// start leave negotiation almost nothing to do. Cold regions are
	// unaffected (no warm routes, zero penalty — the strict/cold byte
	// contract never sees this branch).
	_, indSpan := telemetry.StartSpan(ctx, "route:independent")
	indSpan.SetAttr("region", s.region.ID)
	t0 := now()
	initPres := 0.0
	for _, netID := range order {
		if w := s.warm[netID]; w != nil && s.warmUsable(w) {
			s.routes[netID] = w
			if s.seedOcc {
				s.occupy(w)
			}
			oc.warm++
			if s.seedOcc {
				initPres = s.cfg.PresentCostBase
			}
		}
	}
	for _, netID := range order {
		if s.routes[netID] != nil {
			continue
		}
		nr := s.routeNet(netID, initPres, s.cfg.WindowMargin)
		s.routes[netID] = nr
		s.occupy(nr)
	}
	oc.summary.InitialCongested, oc.summary.InitialCongestedByLayer = s.congestedCounts()
	indSpan.SetAttr("nets", len(order))
	indSpan.SetAttr("warm", oc.warm)
	indSpan.SetAttr("congested", oc.summary.InitialCongested)
	indSpan.End()
	oc.stage[0] = since(t0)
	t0 = now()

	// Stage 2: rip-up and reroute with ramping penalties. Negotiation
	// stops early once the overuse count stalls: the surviving conflicts
	// are structural (e.g. physically incompatible line-ends) and are
	// resolved by unrouting in stage 3.
	reg := telemetry.RegistryFrom(ctx)
	em := telemetry.EmitterFrom(ctx)
	negCtx, negSpan := telemetry.StartSpan(ctx, "route:negotiate")
	negSpan.SetAttr("region", s.region.ID)
	presFac := s.cfg.PresentCostBase
	bestOveruse := 1 << 30
	stall := 0
	for iter := 1; iter <= s.cfg.MaxNegotiationIters; iter++ {
		over := s.overusedCount()
		if over == 0 {
			break
		}
		if over < bestOveruse {
			bestOveruse = over
			stall = 0
		} else {
			stall++
			if stall >= s.cfg.StallRounds {
				break
			}
		}
		oc.summary.NegotiationIters = iter
		_, iterSpan := telemetry.StartSpan(negCtx, "negotiate_round")
		iterSpan.SetAttr("iter", iter)
		iterSpan.SetAttr("overused", over)
		iterSpan.SetAttr("pres_fac", presFac)
		reg.Histogram("cpr_router_overused_nodes", "Overused grid nodes at the start of each negotiation round.",
			telemetry.DefCountBuckets).Observe(float64(over))
		s.chargeHistory()
		margin := s.cfg.WindowMargin + s.cfg.WindowGrowth*iter
		if margin > s.cfg.MaxWindowMargin {
			margin = s.cfg.MaxWindowMargin
		}
		ripups := 0
		for _, netID := range order {
			nr := s.routes[netID]
			if nr.Routed && !s.usesOverused(nr) {
				continue
			}
			// Keep installed warm routes pinned: they are a converged,
			// mutually conflict-free solution, so every overused node they
			// touch also has a fresh-net user that can move instead.
			// Ripping the warm set along with it would cascade into a
			// near-cold negotiation. Nets whose warm entry is UNROUTED
			// carry the opposite verdict — the baseline's full negotiation
			// already failed them — so they get their one stage-1 attempt
			// and are not churned further. Anything either kind still
			// blocks at the end is resolved by stages 3 and 4 as usual.
			if w := s.warm[netID]; w != nil && (nr == w || !w.Routed) {
				continue
			}
			s.release(nr)
			ripups++
			newRoute := s.routeNet(netID, presFac, margin)
			s.routes[netID] = newRoute
			s.occupy(newRoute)
		}
		iterSpan.SetAttr("ripups", ripups)
		iterSpan.End()
		em.Emit("negotiate_round", map[string]any{
			"region": s.region.ID, "iter": iter, "overused": over, "ripups": ripups,
		})
		reg.Counter("cpr_router_ripups_total", "Nets ripped up and rerouted during negotiation.").Add(float64(ripups))
		presFac *= s.cfg.PresentCostGrowth
	}
	negSpan.SetAttr("rounds", oc.summary.NegotiationIters)
	negSpan.End()
	oc.stage[1] = since(t0)
	t0 = now()

	// Stage 3: resolve residual congestion by unrouting offenders.
	_, resSpan := telemetry.StartSpan(ctx, "route:resolve")
	resSpan.SetAttr("region", s.region.ID)
	oc.summary.CongestionUnrouted = s.resolveCongestion()
	resSpan.SetAttr("unrouted", oc.summary.CongestionUnrouted)
	resSpan.End()
	oc.stage[2] = since(t0)
	t0 = now()

	// Stage 4: line-end extension and design rule check.
	_, drcSpan := telemetry.StartSpan(ctx, "route:drc")
	drcSpan.SetAttr("region", s.region.ID)
	if !s.cfg.SkipDRC {
		oc.summary.DRCUnrouted = s.enforceLineEndRules()
	}
	drcSpan.SetAttr("unrouted", oc.summary.DRCUnrouted)
	drcSpan.End()
	oc.stage[3] = since(t0)
	return oc
}

// warmUsable reports whether a previous route can be replayed on the
// current grid: the net must still be allowed to enter every route node
// (pins unchanged on M1, no new blockage, no foreign ownership). Virtual
// cells carry no legality constraint — they are occupancy, not metal.
func (s *shard) warmUsable(nr *NetRoute) bool {
	if !nr.Routed {
		return false
	}
	for _, id := range nr.Nodes {
		if !s.g.Enterable(id, nr.NetID) {
			return false
		}
	}
	return true
}

// congestedCounts walks the region's routed nets and counts
// metal-congested nodes, deduplicated. Every congested node carries at
// least one member route's metal (occupancy comes only from occupy), so
// the walk equals a grid scan restricted to the region — without reading
// any cell other shards could be writing.
func (s *shard) congestedCounts() (int, [tech.NumLayers]int) {
	var byLayer [tech.NumLayers]int
	total := 0
	seen := make(map[grid.NodeID]struct{})
	for _, netID := range s.region.Nets {
		nr := s.routes[netID]
		if nr == nil || !nr.Routed {
			continue
		}
		for _, id := range nr.Nodes {
			if _, ok := seen[id]; ok {
				continue
			}
			seen[id] = struct{}{}
			if s.g.MetalCongested(id) {
				total++
				_, _, z := s.g.Coords(id)
				byLayer[z]++
			}
		}
	}
	return total, byLayer
}

// overusedCount counts overused nodes (any usage, including line-end
// clearance overlap) among the region's routes, deduplicated. Equals a
// global grid scan when the region covers all routed nets.
func (s *shard) overusedCount() int {
	n := 0
	seen := make(map[grid.NodeID]struct{})
	count := func(id grid.NodeID) {
		if _, ok := seen[id]; ok {
			return
		}
		seen[id] = struct{}{}
		if s.g.Overused(id) {
			n++
		}
	}
	for _, netID := range s.region.Nets {
		nr := s.routes[netID]
		if nr == nil || !nr.Routed {
			continue
		}
		for _, id := range nr.Nodes {
			count(id)
		}
		for _, id := range nr.Virtual {
			count(id)
		}
	}
	return n
}

// netOrderOf returns the given nets in the configured routing order,
// breaking ties by ID for determinism. The order of a net set depends
// only on the member nets, never on the rest of the design.
func (r *Router) netOrderOf(nets []int) []int {
	order := append([]int(nil), nets...)
	key := make(map[int]int, len(nets))
	for _, netID := range nets {
		switch r.cfg.Order {
		case OrderHPWLDesc:
			key[netID] = -r.d.HPWL(netID)
		case OrderByID:
			key[netID] = 0
		case OrderByPins:
			key[netID] = -len(r.d.Nets[netID].PinIDs)
		default:
			key[netID] = r.d.HPWL(netID)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if key[order[a]] != key[order[b]] {
			return key[order[a]] < key[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// netOrder returns all net IDs in the configured routing order.
func (r *Router) netOrder() []int {
	nets := make([]int, len(r.d.Nets))
	for i := range nets {
		nets[i] = i
	}
	return r.netOrderOf(nets)
}

// routeNet connects all pins of a net with sequential multi-source
// shortest-path searches. presFac scales the congestion penalty; margin
// expands the search window beyond the net bounding box.
func (s *shard) routeNet(netID int, presFac float64, margin int) *NetRoute {
	nr := &NetRoute{NetID: netID}
	pins := s.d.Nets[netID].PinIDs
	if len(pins) == 0 {
		nr.Routed = true
		return nr
	}

	// Order pins left to right for a stable, roughly monotone build.
	ordered := append([]int(nil), pins...)
	sort.Slice(ordered, func(a, b int) bool {
		pa, pb := &s.d.Pins[ordered[a]], &s.d.Pins[ordered[b]]
		if pa.Shape.X0 != pb.Shape.X0 {
			return pa.Shape.X0 < pb.Shape.X0
		}
		return pa.Shape.Y0 < pb.Shape.Y0
	})

	s.restoreSeeds(netID)
	win := s.window(netID, margin)
	treeSet := make(map[grid.NodeID]bool)
	addNode := func(id grid.NodeID) {
		if !treeSet[id] {
			treeSet[id] = true
			nr.Nodes = append(nr.Nodes, id)
		}
	}
	for _, cell := range s.pinCells(ordered[0]) {
		addNode(cell)
	}
	if len(ordered) == 1 {
		nr.Routed = true
		return nr
	}

	for _, pid := range ordered[1:] {
		targets := make(map[grid.NodeID]bool)
		already := false
		for _, cell := range s.pinCells(pid) {
			if treeSet[cell] {
				already = true
				break
			}
			targets[cell] = true
		}
		if already {
			continue
		}
		path, ok := s.search(netID, nr.Nodes, targets, win, presFac)
		if !ok {
			nr.Routed = false
			nr.FailReason = "search"
			nr.Nodes = nil
			nr.Edges = nil
			nr.Virtual = nil
			return nr
		}
		for i, id := range path {
			addNode(id)
			if i > 0 {
				nr.Edges = append(nr.Edges, grid.MakeEdge(path[i-1], id))
			}
		}
	}
	nr.Routed = true
	s.computeVirtual(nr)
	return nr
}

// pinCells returns the grid nodes of a pin's M1 shape.
func (r *Router) pinCells(pid int) []grid.NodeID {
	sh := r.d.Pins[pid].Shape
	cells := make([]grid.NodeID, 0, sh.Area())
	for y := sh.Y0; y <= sh.Y1; y++ {
		for x := sh.X0; x <= sh.X1; x++ {
			cells = append(cells, r.g.ID(x, y, tech.M1))
		}
	}
	return cells
}

// window computes the clamped search window for a net.
func (r *Router) window(netID, margin int) searchWindow {
	box := r.clampRect(r.d.NetBBox(netID).Expand(margin))
	return searchWindow{x0: box.X0, y0: box.Y0, w: box.Width(), h: box.Height()}
}

// rules resolves the technology's multi-patterning rule engine. It is
// resolved per call rather than cached on the Router so the engine
// parameter reads stay inside every routing stage's static call graph
// (the keypurity analyzer proves cache-key coverage from those reads).
func (r *Router) rules() tech.RuleEngine {
	return tech.RulesFor(r.g.Tech)
}

// clearanceMargin is the number of cells beyond each strip end treated as
// occupied — the rule engine's margin such that two nets whose clearance
// cells do not collide always satisfy the engine's tip spacing after
// extension.
func (r *Router) clearanceMargin() int {
	return r.rules().ClearanceMargin()
}

// computeVirtual fills nr.Virtual with the clearance cells at every strip
// end (skipping cells already part of the route).
func (r *Router) computeVirtual(nr *NetRoute) {
	nr.Virtual = nr.Virtual[:0]
	margin := r.clearanceMargin()
	if margin == 0 {
		return
	}
	inRoute := make(map[grid.NodeID]bool, len(nr.Nodes))
	for _, id := range nr.Nodes {
		inRoute[id] = true
	}
	add := func(id grid.NodeID) {
		if !inRoute[id] {
			inRoute[id] = true
			nr.Virtual = append(nr.Virtual, id)
		}
	}
	for _, s := range r.segmentsOf(nr) {
		limit := r.d.Width
		if s.layer == tech.M3 {
			limit = r.d.Height
		}
		for m := 1; m <= margin; m++ {
			for _, c := range []int{s.span.Lo - m, s.span.Hi + m} {
				if c < 0 || c > limit-1 {
					continue
				}
				if s.layer == tech.M2 {
					add(r.g.ID(c, s.track, tech.M2))
				} else {
					add(r.g.ID(s.track, c, tech.M3))
				}
			}
		}
	}
}

// occupy registers a routed net's nodes (and clearance cells) on the grid
// and trims the net's unused interval reservation so other nets can use
// the freed cells (the reservation is restored if the net is ripped up).
func (r *Router) occupy(nr *NetRoute) {
	if !nr.Routed {
		return
	}
	for _, id := range nr.Nodes {
		r.g.Occupy(id)
	}
	for _, id := range nr.Virtual {
		r.g.OccupyVirtual(id)
	}
	r.trimSeeds(nr)
}

// trimSeeds releases seeded interval cells the final route does not use.
func (r *Router) trimSeeds(nr *NetRoute) {
	seeds := r.seededNodes[nr.NetID]
	if len(seeds) == 0 {
		return
	}
	inRoute := make(map[grid.NodeID]bool, len(nr.Nodes))
	for _, id := range nr.Nodes {
		inRoute[id] = true
	}
	for _, id := range seeds {
		if !inRoute[id] && r.g.Owner(id) == nr.NetID {
			r.g.ClearOwner(id)
		}
	}
}

// restoreSeeds best-effort re-reserves a ripped net's assigned interval
// cells (skipping cells meanwhile taken by other nets).
func (r *Router) restoreSeeds(netID int) {
	for _, id := range r.seededNodes[netID] {
		if r.g.Owner(id) == -1 && r.g.Occupancy(id) == 0 && !r.g.Blocked(id) {
			r.g.SetOwner(id, netID)
		}
	}
}

// release removes a net's occupancy.
func (r *Router) release(nr *NetRoute) {
	if !nr.Routed {
		return
	}
	for _, id := range nr.Nodes {
		r.g.Release(id)
	}
	for _, id := range nr.Virtual {
		r.g.ReleaseVirtual(id)
	}
}

// usesOverused reports whether the route crosses any congested node.
func (r *Router) usesOverused(nr *NetRoute) bool {
	for _, id := range nr.Nodes {
		if r.g.Overused(id) {
			return true
		}
	}
	for _, id := range nr.Virtual {
		if r.g.Overused(id) {
			return true
		}
	}
	return false
}

// chargeHistory adds history cost to every overused node crossed by the
// region's routes.
func (s *shard) chargeHistory() {
	for _, netID := range s.region.Nets {
		nr := s.routes[netID]
		if nr == nil || !nr.Routed {
			continue
		}
		for _, id := range nr.Nodes {
			if s.g.Overused(id) {
				s.g.AddHistory(id, s.cfg.HistoryIncrement)
			}
		}
		for _, id := range nr.Virtual {
			if s.g.Overused(id) {
				s.g.AddHistory(id, s.cfg.HistoryIncrement)
			}
		}
	}
}

// resolveCongestion unroutes member nets until no region node is
// overused: repeatedly drop the net crossing the most overused nodes
// (ties broken by region net order). Rather than rescanning every route
// per drop, it maintains the overused-node set and per-net overuse
// counts incrementally — only the dropped net's nodes can change state,
// since release touches no other usage. The drop sequence is identical
// to the naive full-rescan formulation.
func (s *shard) resolveCongestion() int {
	// users indexes each touched node by the member nets touching it,
	// one entry per route-slice occurrence; cnt mirrors the per-net
	// overused-touch count the naive scan would compute.
	users := make(map[grid.NodeID][]int)
	cnt := make(map[int]int)
	overSet := make(map[grid.NodeID]struct{})
	touch := func(netID int, id grid.NodeID) {
		users[id] = append(users[id], netID)
		if s.g.Overused(id) {
			overSet[id] = struct{}{}
			cnt[netID]++
		}
	}
	for _, netID := range s.region.Nets {
		nr := s.routes[netID]
		if !nr.Routed {
			continue
		}
		for _, id := range nr.Nodes {
			touch(netID, id)
		}
		for _, id := range nr.Virtual {
			touch(netID, id)
		}
	}

	dropped := 0
	for len(overSet) > 0 {
		worst, worstCount := -1, 0
		for _, netID := range s.region.Nets {
			if c := cnt[netID]; c > worstCount {
				worst, worstCount = netID, c
			}
		}
		if worst < 0 {
			break
		}
		nr := s.routes[worst]
		nodes, virtual := nr.Nodes, nr.Virtual
		s.release(nr)
		nr.Routed = false
		nr.FailReason = "congestion"
		nr.Nodes = nil
		nr.Edges = nil
		nr.Virtual = nil
		delete(cnt, worst)
		dropped++

		// Retract the dropped net's touches and re-derive the state of
		// every node it covered: a node leaves the overused set when the
		// release took its usage back under capacity, or when no routed
		// member net touches it any more (foreign seeded occupancy alone
		// never counts — the naive scan walks member routes only).
		update := func(id grid.NodeID) {
			us := users[id]
			w := 0
			for _, u := range us {
				if u != worst {
					us[w] = u
					w++
				}
			}
			us = us[:w]
			if len(us) == 0 {
				delete(users, id)
			} else {
				users[id] = us
			}
			if _, over := overSet[id]; !over {
				return
			}
			if len(us) == 0 || !s.g.Overused(id) {
				delete(overSet, id)
				for _, u := range us {
					cnt[u]--
				}
			}
		}
		seen := make(map[grid.NodeID]struct{}, len(nodes)+len(virtual))
		once := func(id grid.NodeID) {
			if _, ok := seen[id]; ok {
				return
			}
			seen[id] = struct{}{}
			update(id)
		}
		for _, id := range nodes {
			once(id)
		}
		for _, id := range virtual {
			once(id)
		}
	}
	return dropped
}
