package cliutil

import (
	"testing"

	"cpr/internal/core"
)

func TestParseMode(t *testing.T) {
	cases := map[string]core.Mode{
		"cpr":        core.ModeCPR,
		"nopinopt":   core.ModeNoPinOpt,
		"sequential": core.ModeSequential,
	}
	for in, want := range cases {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("warp"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
}

func TestParseOptimizer(t *testing.T) {
	if got, err := ParseOptimizer("lr"); err != nil || got != core.OptLR {
		t.Errorf("ParseOptimizer(lr) = %v, %v", got, err)
	}
	if got, err := ParseOptimizer("ilp"); err != nil || got != core.OptILP {
		t.Errorf("ParseOptimizer(ilp) = %v, %v", got, err)
	}
	if _, err := ParseOptimizer("sat"); err == nil {
		t.Error("ParseOptimizer accepted an unknown optimizer")
	}
}
