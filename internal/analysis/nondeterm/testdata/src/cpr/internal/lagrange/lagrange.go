// Package lagrange is golden input: a restricted, result-producing
// package where nondeterministic inputs are forbidden.
package lagrange

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

// Solve exercises every forbidden call family.
func Solve() float64 {
	start := time.Now() // want `call to time\.Now in result-producing package`
	x := rand.Float64() // want `call to math/rand\.Float64 in result-producing package`
	if os.Getenv("CPR_FAST") != "" { // want `call to os\.Getenv in result-producing package`
		x *= 2
	}
	if runtime.GOMAXPROCS(0) > 4 { // want `call to runtime\.GOMAXPROCS in result-producing package`
		x += 1
	}
	_ = time.Since(start) // want `call to time\.Since in result-producing package`
	return x
}

// Elapsed demonstrates the sanctioned escape hatch: wall-clock metrics
// that never feed a result are justified and silenced.
func Elapsed() time.Duration {
	start := time.Now() //cprlint:nondeterm wall-clock metric only; never feeds the solution
	work()
	//cprlint:nondeterm wall-clock metric only; never feeds the solution
	return time.Since(start)
}

// Deterministic code draws no diagnostics.
func work() {
	total := 0
	for i := 0; i < 100; i++ {
		total += i
	}
	_ = total
}
