// Package mutexcopy flags copies of values whose type contains a sync
// primitive (Mutex, RWMutex, WaitGroup, Once, Cond, Pool, Map). A
// copied lock is a distinct lock: code guarding shared state through
// the copy silently loses mutual exclusion — for this repo that means
// jobs.Job or jobs.Manager state observed without their locks.
//
// Flagged shapes: by-value receivers and parameters of lock-bearing
// types, plain variable-to-variable (or dereference) assignments, and
// range value variables. Composite literals and function call results
// are initializations, not copies of a live lock, and stay legal.
package mutexcopy

import (
	"go/ast"
	"go/types"

	"cpr/internal/analysis"
)

// Analyzer is the mutexcopy pass.
var Analyzer = &analysis.Analyzer{
	Name: "mutexcopy",
	Doc:  "flags by-value copies of structs containing sync primitives (params, receivers, assignments, range variables)",
	Run:  run,
}

// lockTypes are the sync types that must not be copied after first use.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(pass, s.Recv, "receiver")
				if s.Type.Params != nil {
					checkFieldList(pass, s.Type.Params, "parameter")
				}
			case *ast.FuncLit:
				if s.Type.Params != nil {
					checkFieldList(pass, s.Type.Params, "parameter")
				}
			case *ast.AssignStmt:
				for i, rhs := range s.Rhs {
					if i >= len(s.Lhs) {
						break
					}
					checkCopyExpr(pass, rhs)
				}
			case *ast.RangeStmt:
				if s.Value != nil {
					if t := exprType(pass.TypesInfo, s.Value); t != nil && containsLock(t, nil) {
						pass.Reportf(s.Value.Pos(),
							"range value copies %s which contains a sync primitive; iterate by index or over pointers", typeName(t))
					}
				}
			case *ast.GenDecl:
				for _, spec := range s.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						checkCopyExpr(pass, v)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkCopyExpr flags reads of an existing lock-bearing value: an
// identifier, field, element, or dereference. Literals and calls create
// fresh values and are fine.
func checkCopyExpr(pass *analysis.Pass, e ast.Expr) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := pass.TypesInfo.Types[e].Type
	if t == nil || !containsLock(t, nil) {
		return
	}
	pass.Reportf(e.Pos(), "assignment copies %s which contains a sync primitive; use a pointer", typeName(t))
}

func checkFieldList(pass *analysis.Pass, fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		if _, isPtr := ast.Unparen(field.Type).(*ast.StarExpr); isPtr {
			continue
		}
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if containsLock(tv.Type, nil) {
			pass.Reportf(field.Type.Pos(),
				"by-value %s copies %s which contains a sync primitive; use a pointer", kind, typeName(tv.Type))
		}
	}
}

// containsLock reports whether a value of type t embeds a sync
// primitive by value, recursively through structs and arrays.
func containsLock(t types.Type, seen []*types.Named) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return true
		}
		for _, s := range seen {
			if s == named {
				return false
			}
		}
		seen = append(seen, named)
		return containsLock(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// exprType resolves an expression's type, falling back to the defined
// object for idents introduced by the statement itself (range := vars
// have no Types entry, only a Defs one).
func exprType(info *types.Info, e ast.Expr) types.Type {
	if t := info.Types[e].Type; t != nil {
		return t
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj, ok := info.Defs[id]; ok && obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func typeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
