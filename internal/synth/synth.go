// Package synth generates synthetic standard-cell designs that stand in
// for the paper's benchmark circuits (ecc, efc, ctl, alu, div, top from
// reference [12]), which are not publicly available.
//
// The generator reproduces the characteristics the paper's metrics depend
// on: row-based placement with 10 M2 tracks per standard cell row, short
// local nets of two to four M1 pins (vertical bars crossing one to three
// tracks), realistic pin density, and a sprinkling of pre-routed M2
// blockages. Net counts and die extents follow Table 2 of the paper at a
// resolution of 10 grid units per micron (one cell row per micron of die
// height). Generation is fully deterministic per (spec, seed).
package synth

import (
	"fmt"
	"math/rand"

	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/tech"
)

// Spec parameterizes one synthetic circuit.
type Spec struct {
	// Name labels the design (Table 2 circuit name for the presets).
	Name string
	// Nets is the target net count.
	Nets int
	// Width and Height are the grid extents (20 units per micron).
	Width, Height int
	// Seed drives the deterministic generator.
	Seed int64
	// BlockageFraction is the approximate fraction of M2 area covered by
	// pre-routed blockages (default 0.02).
	BlockageFraction float64
	// MaxNetSpan bounds the pin spread of a net in grid units
	// (default 24, matching the paper's short local nets).
	MaxNetSpan int
	// NoPowerRails disables the power/ground rail blockages on the first
	// and last track of every panel (rails are on by default: a design
	// "with synthesized power/ground rails is inherently separated into
	// panels", paper §3).
	NoPowerRails bool
}

func (s Spec) withDefaults() Spec {
	if s.BlockageFraction == 0 {
		s.BlockageFraction = 0.02
	}
	if s.MaxNetSpan == 0 {
		s.MaxNetSpan = 24
	}
	return s
}

// TableSpecs returns the six circuits of the paper's Table 2. Net counts
// are the paper's; die areas are calibrated to a constant routable pin
// density (~0.024 pins per grid cell, the density at which circuits land
// in the paper's 93-97% routability regime) rather than mapped directly
// from the published micron extents, because the synthetic cells do not
// share the real libraries' utilization.
func TableSpecs() []Spec {
	return []Spec{
		{Name: "ecc", Nets: 1671, Width: 420, Height: 420, Seed: 101},
		{Name: "efc", Nets: 2219, Width: 500, Height: 470, Seed: 102},
		{Name: "ctl", Nets: 2706, Width: 540, Height: 530, Seed: 103},
		{Name: "alu", Nets: 3108, Width: 590, Height: 560, Seed: 104},
		{Name: "div", Nets: 5813, Width: 790, Height: 780, Seed: 105},
		{Name: "top", Nets: 22201, Width: 1540, Height: 1520, Seed: 106},
	}
}

// SpecByName returns the Table 2 spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range TableSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("synth: unknown circuit %q (want one of ecc efc ctl alu div top)", name)
}

// Generate builds the synthetic design for a spec. The result is
// validated before return.
func Generate(spec Spec) (*design.Design, error) {
	spec = spec.withDefaults()
	if spec.Nets <= 0 || spec.Width <= 0 || spec.Height <= 0 {
		return nil, fmt.Errorf("synth: invalid spec %+v", spec)
	}
	t := tech.Default()
	d := design.New(spec.Name, spec.Width, spec.Height, t)
	rng := rand.New(rand.NewSource(spec.Seed))

	occupied := newOccupancy(spec.Width, spec.Height)
	panels := spec.Height / t.TracksPerPanel
	if panels == 0 {
		panels = 1
	}

	// Power/ground rails: the first and last M2 track of every panel are
	// pre-routed, leaving 8 of 10 tracks for signal routing (pins are
	// placed on interior tracks only).
	if !spec.NoPowerRails {
		for panel := 0; panel < panels; panel++ {
			lo, hi := t.PanelTracks(panel)
			if hi >= spec.Height {
				hi = spec.Height - 1
			}
			for _, y := range []int{lo, hi} {
				sh := geom.MakeRect(0, y, spec.Width-1, y)
				d.AddBlockage(tech.M2, sh)
				occupied.claim(sh, 0)
			}
		}
	}

	for netIdx := 0; netIdx < spec.Nets; netIdx++ {
		if !placeNet(d, rng, occupied, spec, panels, netIdx) {
			return nil, fmt.Errorf("synth: could not place net %d of %d (density too high for %dx%d grid)",
				netIdx, spec.Nets, spec.Width, spec.Height)
		}
	}
	placeBlockages(d, rng, occupied, spec)

	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated design invalid: %w", err)
	}
	return d, nil
}

// MustGenerate is Generate that panics on error, for tests and examples.
func MustGenerate(spec Spec) *design.Design {
	d, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return d
}

// GenerateMultiRegion tiles `regions` independently generated copies of
// spec side by side, separated by `gap` empty grid columns, into one
// design of width regions*spec.Width + (regions-1)*gap. Each tile gets
// its own seed (spec.Seed+tile) and its net and pin names are prefixed
// "r<tile>_", so tiles differ in content, not just position.
//
// The gap's purpose is routing-region separation: with gap wider than
// twice the router's net influence margin (~150 columns at the default
// config; 300 is a safe default), the router provably partitions the
// tiles into disjoint regions, so an edit inside one tile lets a strict
// incremental rerun splice every other tile's route bundle
// byte-identically — the splice path a single connected region (like
// benchlarge) never exercises.
func GenerateMultiRegion(spec Spec, regions, gap int) (*design.Design, error) {
	spec = spec.withDefaults()
	if regions < 1 || gap < 0 {
		return nil, fmt.Errorf("synth: invalid multi-region shape (regions=%d gap=%d)", regions, gap)
	}
	width := regions*spec.Width + (regions-1)*gap
	d := design.New(spec.Name, width, spec.Height, tech.Default())
	for tile := 0; tile < regions; tile++ {
		tileSpec := spec
		tileSpec.Seed = spec.Seed + int64(tile)
		src, err := Generate(tileSpec)
		if err != nil {
			return nil, fmt.Errorf("synth: tile %d: %w", tile, err)
		}
		off := tile * (spec.Width + gap)
		netIDs := make([]int, len(src.Nets))
		for i, n := range src.Nets {
			netIDs[i] = d.AddNet(fmt.Sprintf("r%d_%s", tile, n.Name))
		}
		for _, p := range src.Pins {
			sh := p.Shape
			sh.X0 += off
			sh.X1 += off
			d.AddPin(fmt.Sprintf("r%d_%s", tile, p.Name), netIDs[p.NetID], sh)
		}
		for _, bl := range src.Blockages {
			sh := bl.Shape
			sh.X0 += off
			sh.X1 += off
			d.AddBlockage(bl.Layer, sh)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("synth: multi-region design invalid: %w", err)
	}
	return d, nil
}

// occupancy is a per-cell usage bitmap with a one-cell guard ring around
// every pin so neighbouring pins never touch.
type occupancy struct {
	w, h  int
	cells []bool
}

func newOccupancy(w, h int) *occupancy {
	return &occupancy{w: w, h: h, cells: make([]bool, w*h)}
}

func (o *occupancy) fits(r geom.Rect) bool {
	if r.X0 < 0 || r.Y0 < 0 || r.X1 >= o.w || r.Y1 >= o.h {
		return false
	}
	for y := r.Y0; y <= r.Y1; y++ {
		for x := r.X0; x <= r.X1; x++ {
			if o.cells[y*o.w+x] {
				return false
			}
		}
	}
	return true
}

func (o *occupancy) claim(r geom.Rect, guard int) {
	g := r.Expand(guard)
	if g.X0 < 0 {
		g.X0 = 0
	}
	if g.Y0 < 0 {
		g.Y0 = 0
	}
	if g.X1 >= o.w {
		g.X1 = o.w - 1
	}
	if g.Y1 >= o.h {
		g.Y1 = o.h - 1
	}
	for y := g.Y0; y <= g.Y1; y++ {
		for x := g.X0; x <= g.X1; x++ {
			o.cells[y*o.w+x] = true
		}
	}
}

// placeNet places one net: an anchor cell plus one to three more pins in
// a local neighbourhood, biased to the anchor's panel.
func placeNet(d *design.Design, rng *rand.Rand, occ *occupancy, spec Spec, panels, netIdx int) bool {
	t := d.Tech
	degree := pinDegree(rng)
	const maxAttempts = 400

	for attempt := 0; attempt < maxAttempts; attempt++ {
		panel := rng.Intn(panels)
		trackLo, trackHi := t.PanelTracks(panel)
		if trackHi >= spec.Height {
			trackHi = spec.Height - 1
		}
		anchorX := rng.Intn(spec.Width)
		shapes := make([]geom.Rect, 0, degree)
		ok := true
		for p := 0; p < degree; p++ {
			sh, placed := placePin(rng, occ, shapes, spec, anchorX, trackLo, trackHi, panels, t)
			if !placed {
				ok = false
				break
			}
			shapes = append(shapes, sh)
		}
		if !ok {
			continue // retry with a fresh anchor; nothing was claimed
		}
		netID := d.AddNet(fmt.Sprintf("n%d", netIdx))
		for p, sh := range shapes {
			d.AddPin(fmt.Sprintf("n%d_p%d", netIdx, p), netID, sh)
			occ.claim(sh, 1)
		}
		return true
	}
	return false
}

// pinDegree samples the pins-per-net distribution: 60% two-pin, 30%
// three-pin, 10% four-pin (mean 2.5, matching short standard cell nets).
func pinDegree(rng *rand.Rand) int {
	switch v := rng.Float64(); {
	case v < 0.6:
		return 2
	case v < 0.9:
		return 3
	default:
		return 4
	}
}

// placePin finds a free shape near anchorX, usually inside the anchor
// panel (80%) and otherwise in an adjacent panel (short vertical nets).
// The shape must clear both the global occupancy and the sibling shapes
// already chosen for the same net (with a one-cell guard).
func placePin(rng *rand.Rand, occ *occupancy, siblings []geom.Rect, spec Spec, anchorX, trackLo, trackHi, panels int, t *tech.Technology) (geom.Rect, bool) {
	for attempt := 0; attempt < 60; attempt++ {
		x := anchorX + rng.Intn(2*spec.MaxNetSpan+1) - spec.MaxNetSpan
		lo, hi := trackLo, trackHi
		if rng.Float64() < 0.2 && panels > 1 {
			// Adjacent panel.
			panel := t.PanelOfTrack(trackLo)
			if panel == 0 || (panel < panels-1 && rng.Intn(2) == 0) {
				panel++
			} else {
				panel--
			}
			lo, hi = t.PanelTracks(panel)
		}
		if hi >= spec.Height {
			hi = spec.Height - 1
		}
		if lo > hi {
			continue
		}
		// M1 pins are vertical bars: 1 column wide, 1-3 tracks tall
		// (standard cell pins cross up to a few routing tracks, which
		// is what gives the optimizer track choices; cf. paper Fig. 3).
		height := 1 + rng.Intn(3)
		y0 := lo + rng.Intn(hi-lo+1)
		y1 := y0 + height - 1
		if y1 > hi {
			y1 = hi
		}
		sh := geom.MakeRect(x, y0, x, y1)
		if !occ.fits(sh) {
			continue
		}
		clear := true
		for _, sib := range siblings {
			if sib.Expand(1).Overlaps(sh) {
				clear = false
				break
			}
		}
		if clear {
			return sh, true
		}
	}
	return geom.Rect{}, false
}

// placeBlockages adds random single-track M2 pre-route blockages away
// from pins until the target area fraction is reached.
func placeBlockages(d *design.Design, rng *rand.Rand, occ *occupancy, spec Spec) {
	target := int(spec.BlockageFraction * float64(spec.Width) * float64(spec.Height))
	covered := 0
	for attempt := 0; attempt < 20*spec.Nets && covered < target; attempt++ {
		x := rng.Intn(spec.Width)
		y := rng.Intn(spec.Height)
		length := 3 + rng.Intn(6)
		sh := geom.MakeRect(x, y, minInt(x+length-1, spec.Width-1), y)
		if !occ.fits(sh) {
			continue
		}
		occ.claim(sh, 0)
		d.AddBlockage(tech.M2, sh)
		covered += sh.Area()
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SweepSpec builds a single-panel-rows design sized to hold roughly
// targetPins pins at the Table 2 density, for the Figure 6 scalability
// sweeps. The mean net degree is 2.5 pins.
func SweepSpec(targetPins int, seed int64) Spec {
	nets := targetPins * 2 / 5 // pins / 2.5
	if nets < 1 {
		nets = 1
	}
	// Keep the Table 2 pin density of about 0.024 pins per cell.
	area := float64(targetPins) / 0.024
	width := 1
	for width*width < int(area) {
		width++
	}
	// Round height to whole panels.
	height := (width/10 + 1) * 10
	return Spec{
		Name:   fmt.Sprintf("sweep%d", targetPins),
		Nets:   nets,
		Width:  width,
		Height: height,
		Seed:   seed,
	}
}
