// Package engine drives summary-based interprocedural analysis over a
// module: it walks the `go list -deps` graph, summarizes in-module
// dependency packages (running only fact-producing analyzers on them,
// reloading unchanged summaries from a facts cache), then runs the full
// analyzer set on the target packages with every dependency's facts
// already in the store. Dependencies are processed before dependents,
// so a function's summary — "blocks on I/O", "reads the wall clock",
// "reads Options field X" — is always complete by the time its callers
// are checked.
package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"time"

	"cpr/internal/analysis"
	"cpr/internal/analysis/loader"
)

// factsFormat versions the on-disk facts cache; bump it whenever the
// encoding or the meaning of summaries changes so stale caches miss
// instead of corrupting a run.
const factsFormat = "cprlint-facts-v1"

// Options configures one engine run.
type Options struct {
	// ModuleDir is the module root (where go list runs).
	ModuleDir string
	// FactsDir, when non-empty, persists per-package fact encodings
	// keyed by a content hash of the package and its in-module
	// dependencies. Unchanged dependency packages reload their
	// summaries instead of being re-type-checked.
	FactsDir string
	// Analyzers are the diagnostic-producing analyzers to run on target
	// packages. Their Requires closure is scheduled automatically.
	Analyzers []*analysis.Analyzer
	// Known, when non-nil, enables suppression-comment validation on
	// target packages (analyzer names and aliases mapped to true).
	Known map[string]bool
}

// Finding is one resolved diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Timing aggregates one analyzer's cost across the run.
type Timing struct {
	Analyzer string  `json:"analyzer"`
	Packages int     `json:"packages"`
	Seconds  float64 `json:"seconds"`
}

// Engine runs analyzers over a module. Create with New; not safe for
// concurrent use.
type Engine struct {
	opts    Options
	loader  *loader.Loader
	store   *analysis.FactStore
	closure []*analysis.Analyzer // Requires-closed, topo order
	protos  map[string][]analysis.Fact
	hashes  map[string]string // pkg path -> content hash
	timings map[string]*Timing
}

// New creates an engine. The loader and fact store live for the
// engine's lifetime, so successive Run calls share type-checking work.
func New(opts Options) *Engine {
	e := &Engine{
		opts:    opts,
		loader:  loader.New(opts.ModuleDir),
		store:   analysis.NewFactStore(),
		closure: analysis.Closure(opts.Analyzers),
		protos:  make(map[string][]analysis.Fact),
		hashes:  make(map[string]string),
		timings: make(map[string]*Timing),
	}
	for _, a := range e.closure {
		if len(a.FactTypes) > 0 {
			e.protos[a.Name] = a.FactTypes
		}
	}
	return e
}

// Store exposes the fact store (tests inspect it).
func (e *Engine) Store() *analysis.FactStore { return e.store }

// Run analyzes every package matching the patterns and returns the
// surviving findings sorted by position, plus per-analyzer timings.
func (e *Engine) Run(patterns ...string) ([]Finding, []Timing, error) {
	roots, err := e.loader.List(patterns...)
	if err != nil {
		return nil, nil, err
	}
	targets := make(map[string]bool, len(roots))
	modPath := ""
	for _, r := range roots {
		targets[r.ImportPath] = true
		if modPath == "" && r.Module != nil {
			modPath = r.Module.Path
		}
	}

	order, err := e.topoOrder(roots, modPath)
	if err != nil {
		return nil, nil, err
	}

	producers := analysis.Producers(e.closure)
	var findings []Finding
	for _, path := range order {
		fs, err := e.runPackage(path, targets[path], modPath, producers)
		if err != nil {
			return nil, nil, err
		}
		findings = append(findings, fs...)
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	var timings []Timing
	for _, t := range e.timings {
		timings = append(timings, *t)
	}
	sort.Slice(timings, func(i, j int) bool { return timings[i].Analyzer < timings[j].Analyzer })
	return findings, timings, nil
}

// topoOrder returns the module-internal packages reachable from roots,
// dependencies before dependents, deterministically.
func (e *Engine) topoOrder(roots []*loader.Meta, modPath string) ([]string, error) {
	var order []string
	state := make(map[string]int) // 0 unseen, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("engine: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		m, err := e.loader.Describe(path)
		if err != nil {
			return err
		}
		imports := append([]string(nil), m.Imports...)
		sort.Strings(imports)
		for _, imp := range imports {
			if imp == "C" || imp == "unsafe" {
				continue
			}
			if mapped, ok := m.ImportMap[imp]; ok {
				imp = mapped
			}
			im, err := e.loader.Describe(imp)
			if err != nil {
				return err
			}
			if !im.InModule(modPath) {
				continue
			}
			if err := visit(imp); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	for _, r := range roots {
		if err := visit(r.ImportPath); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// runPackage summarizes (and, for targets, fully analyzes) one package.
func (e *Engine) runPackage(path string, isTarget bool, modPath string, producers []*analysis.Analyzer) ([]Finding, error) {
	hash, err := e.packageHash(path, modPath, producers)
	if err != nil {
		return nil, err
	}
	e.hashes[path] = hash

	if !isTarget {
		if len(producers) == 0 {
			return nil, nil // nothing to learn from dependencies
		}
		if e.loadCachedFacts(path, hash, producers) {
			return nil, nil
		}
	}

	pkg, err := e.loader.LoadPath(path)
	if err != nil {
		return nil, err
	}

	toRun := producers
	if isTarget {
		toRun = e.closure
	}
	selected := make(map[*analysis.Analyzer]bool, len(e.opts.Analyzers))
	for _, a := range e.opts.Analyzers {
		selected[a] = true
	}

	var findings []Finding
	for _, a := range toRun {
		if len(a.FactTypes) > 0 && e.store.Analyzed(a.Name, path) {
			continue
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      e.loader.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Facts:     e.store,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		start := time.Now()
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("engine: %s on %s: %w", a.Name, path, err)
		}
		e.addTiming(a.Name, time.Since(start))
		if len(a.FactTypes) > 0 {
			e.store.MarkAnalyzed(a.Name, path)
		}
		if !isTarget || !selected[a] {
			continue
		}
		for _, d := range analysis.Filter(e.loader.Fset, pkg.Files, a, diags) {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Pos:      e.loader.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
	}

	if isTarget && e.opts.Known != nil {
		for _, d := range analysis.CheckSuppressions(e.loader.Fset, pkg.Files, e.opts.Known) {
			findings = append(findings, Finding{
				Analyzer: "cprlint",
				Pos:      e.loader.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
	}

	if e.opts.FactsDir != "" && len(producers) > 0 {
		if err := e.writeCachedFacts(path, hash); err != nil {
			return nil, err
		}
	}
	return findings, nil
}

// packageHash fingerprints a package for the facts cache: its file
// contents, the hashes of its in-module imports (so a change anywhere
// below invalidates everything above), the import paths of external
// deps, and the producing analyzer set.
func (e *Engine) packageHash(path, modPath string, producers []*analysis.Analyzer) (string, error) {
	m, err := e.loader.Describe(path)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", factsFormat, path)
	for _, a := range producers {
		fmt.Fprintf(h, "producer %s\n", a.Name)
	}
	files := append([]string(nil), m.GoFiles...)
	sort.Strings(files)
	for _, name := range files {
		data, err := os.ReadFile(filepath.Join(m.Dir, name))
		if err != nil {
			return "", fmt.Errorf("engine: hashing %s: %w", path, err)
		}
		fmt.Fprintf(h, "file %s %d\n", name, len(data))
		h.Write(data)
	}
	imports := append([]string(nil), m.Imports...)
	sort.Strings(imports)
	for _, imp := range imports {
		if mapped, ok := m.ImportMap[imp]; ok {
			imp = mapped
		}
		if dep, ok := e.hashes[imp]; ok {
			fmt.Fprintf(h, "dep %s %s\n", imp, dep)
		} else {
			fmt.Fprintf(h, "ext %s\n", imp)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheEntry is the on-disk facts file for one package.
type cacheEntry struct {
	Format string          `json:"format"`
	Pkg    string          `json:"pkg"`
	Hash   string          `json:"hash"`
	Facts  json.RawMessage `json:"facts"`
}

func (e *Engine) cachePath(pkgPath string) string {
	sum := sha256.Sum256([]byte(pkgPath))
	return filepath.Join(e.opts.FactsDir, hex.EncodeToString(sum[:8])+".facts.json")
}

// loadCachedFacts reloads a dependency's summaries when its cache entry
// matches the current content hash. A miss (absent, unreadable, stale,
// or wrong format) just means the package is re-summarized from source.
func (e *Engine) loadCachedFacts(path, hash string, producers []*analysis.Analyzer) bool {
	if e.opts.FactsDir == "" {
		return false
	}
	cached := true
	for _, a := range producers {
		if !e.store.Analyzed(a.Name, path) {
			cached = false
			break
		}
	}
	if cached {
		return true // already summarized live this run
	}
	data, err := os.ReadFile(e.cachePath(path))
	if err != nil {
		return false
	}
	var entry cacheEntry
	if err := json.Unmarshal(data, &entry); err != nil {
		return false
	}
	if entry.Format != factsFormat || entry.Pkg != path || entry.Hash != hash {
		return false
	}
	if err := e.store.DecodePackage(path, entry.Facts, e.protos); err != nil {
		return false
	}
	for _, a := range producers {
		e.store.MarkAnalyzed(a.Name, path)
	}
	return true
}

// writeCachedFacts persists one package's facts under its content hash.
func (e *Engine) writeCachedFacts(path, hash string) error {
	facts, err := e.store.EncodePackage(path)
	if err != nil {
		return err
	}
	entry := cacheEntry{Format: factsFormat, Pkg: path, Hash: hash, Facts: facts}
	data, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(e.opts.FactsDir, 0o755); err != nil {
		return fmt.Errorf("engine: facts dir: %w", err)
	}
	tmp := e.cachePath(path) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("engine: writing facts: %w", err)
	}
	return os.Rename(tmp, e.cachePath(path))
}

func (e *Engine) addTiming(name string, d time.Duration) {
	t, ok := e.timings[name]
	if !ok {
		t = &Timing{Analyzer: name}
		e.timings[name] = t
	}
	t.Packages++
	t.Seconds += d.Seconds()
}

// RunOverlay runs the analyzers' requirement closure over an
// analysistest overlay: fact producers walk root's source-loaded
// imports post-order (stubs the golden package pulled in through the
// loader overlay), then every analyzer in the closure runs on root
// itself. It returns root's raw diagnostics per analyzer name —
// suppression filtering is the caller's job, so golden tests can pin
// filtering behavior explicitly.
func RunOverlay(l *loader.Loader, store *analysis.FactStore, root *loader.Package, analyzers []*analysis.Analyzer) (map[string][]analysis.Diagnostic, error) {
	closure := analysis.Closure(analyzers)
	producers := analysis.Producers(closure)

	var summarize func(tp *loader.Package) error
	summarize = func(tp *loader.Package) error {
		for _, imp := range tp.Types.Imports() {
			dep, ok := l.SourcePkg(imp.Path())
			if !ok {
				continue // export-data import: stdlib handled by builtin tables
			}
			if err := summarize(dep); err != nil {
				return err
			}
		}
		if tp == root {
			return nil
		}
		for _, a := range producers {
			if store.Analyzed(a.Name, tp.PkgPath) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      l.Fset,
				Files:     tp.Files,
				Pkg:       tp.Types,
				TypesInfo: tp.TypesInfo,
				Facts:     store,
				Report:    func(analysis.Diagnostic) {}, // producer diags on stubs are not under test
			}
			if err := a.Run(pass); err != nil {
				return fmt.Errorf("engine: %s on overlay %s: %w", a.Name, tp.PkgPath, err)
			}
			store.MarkAnalyzed(a.Name, tp.PkgPath)
		}
		return nil
	}
	if err := summarize(root); err != nil {
		return nil, err
	}

	// Run the full closure on root even when a producer already
	// summarized it as some earlier root's dependency: fact export is
	// deterministic and idempotent, and diagnostics must not be lost.
	out := make(map[string][]analysis.Diagnostic)
	for _, a := range closure {
		name := a.Name
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      l.Fset,
			Files:     root.Files,
			Pkg:       root.Types,
			TypesInfo: root.TypesInfo,
			Facts:     store,
			Report:    func(d analysis.Diagnostic) { out[name] = append(out[name], d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("engine: %s on %s: %w", a.Name, root.PkgPath, err)
		}
		if len(a.FactTypes) > 0 {
			store.MarkAnalyzed(a.Name, root.PkgPath)
		}
	}
	return out, nil
}
