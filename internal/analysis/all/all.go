// Package all registers every cprlint analyzer. cmd/cprlint and the
// lint CI job consume this list; adding an analyzer here wires it into
// the whole toolchain.
package all

import (
	"cpr/internal/analysis"
	"cpr/internal/analysis/ctxpass"
	"cpr/internal/analysis/deferclose"
	"cpr/internal/analysis/errdrop"
	"cpr/internal/analysis/floatreduce"
	"cpr/internal/analysis/goroleak"
	"cpr/internal/analysis/keypurity"
	"cpr/internal/analysis/lockheld"
	"cpr/internal/analysis/maporder"
	"cpr/internal/analysis/mutexcopy"
	"cpr/internal/analysis/nondeterm"
)

// Analyzers returns the full suite in stable (alphabetical) order.
// funcsum is deliberately absent: it produces facts, not diagnostics,
// and the engine schedules it implicitly through Requires.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxpass.Analyzer,
		deferclose.Analyzer,
		errdrop.Analyzer,
		floatreduce.Analyzer,
		goroleak.Analyzer,
		keypurity.Analyzer,
		lockheld.Analyzer,
		maporder.Analyzer,
		mutexcopy.Analyzer,
		nondeterm.Analyzer,
	}
}

// Known maps every analyzer name and suppression alias to true, for
// validating //cprlint: comments.
func Known() map[string]bool {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
		for _, alias := range a.SuppressAliases {
			known[alias] = true
		}
	}
	return known
}
