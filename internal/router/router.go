// Package router implements the negotiation-congestion-based
// unidirectional detailed router used by CPR (paper §4) and by the
// "routing w/o pin access optimization" baseline of [21].
//
// The router follows the PathFinder paradigm: an initial independent
// routing stage where nets are routed with congestion visible but not
// prohibitive, followed by rip-up-and-reroute iterations in which present
// congestion penalties ramp up and overused grid nodes accumulate history
// cost. Pins and seeded pin access intervals of other nets are hard
// blockages during each net's search, exactly as the paper prescribes.
//
// After negotiation, metal line-ends are extended for SADP cut mask
// friendliness and checked against line-end spacing and minimum-length
// rules; nets whose extensions violate the rules are treated as unrouted
// (paper §5: "We treat those nets introducing violations as unrouted").
package router

import (
	"context"
	"sort"
	"time"

	"cpr/internal/assign"
	"cpr/internal/design"
	"cpr/internal/grid"
	"cpr/internal/pinaccess"
	"cpr/internal/tech"
	"cpr/internal/telemetry"
)

// NetOrder selects the order nets are (re)routed in.
type NetOrder int

const (
	// OrderHPWLAsc routes short nets first (default; they have the least
	// detour flexibility).
	OrderHPWLAsc NetOrder = iota
	// OrderHPWLDesc routes long nets first.
	OrderHPWLDesc
	// OrderByID routes nets in declaration order.
	OrderByID
	// OrderByPins routes high-fanout nets first.
	OrderByPins
)

func (o NetOrder) String() string {
	switch o {
	case OrderHPWLDesc:
		return "hpwl-desc"
	case OrderByID:
		return "id"
	case OrderByPins:
		return "pins"
	default:
		return "hpwl-asc"
	}
}

// Config tunes the negotiation router. Zero values take defaults.
type Config struct {
	// Order selects the net routing order (default OrderHPWLAsc).
	Order NetOrder

	// MaxNegotiationIters bounds rip-up-and-reroute rounds (default 12).
	MaxNegotiationIters int
	// PresentCostBase is the congestion penalty factor in the first
	// negotiation round (default 2).
	PresentCostBase float64
	// PresentCostGrowth multiplies the penalty each round (default 1.6).
	PresentCostGrowth float64
	// HistoryIncrement is added to every overused node per round
	// (default 1).
	HistoryIncrement float64
	// WindowMargin is the base search window expansion around the net
	// bounding box (default 8).
	WindowMargin int
	// WindowGrowth widens the window per negotiation round (default 4).
	WindowGrowth int
	// MaxWindowMargin caps window growth (default 32).
	MaxWindowMargin int
	// StallRounds stops negotiation after this many rounds without
	// overuse improvement; the residue is resolved by unrouting
	// (default 3).
	StallRounds int
	// SkipDRC disables the line-end extension / design rule stage
	// (used to measure raw negotiated routability).
	SkipDRC bool
}

func (c Config) withDefaults() Config {
	if c.MaxNegotiationIters == 0 {
		c.MaxNegotiationIters = 12
	}
	if c.PresentCostBase == 0 {
		c.PresentCostBase = 2
	}
	if c.PresentCostGrowth == 0 {
		c.PresentCostGrowth = 1.6
	}
	if c.HistoryIncrement == 0 {
		c.HistoryIncrement = 1
	}
	if c.WindowMargin == 0 {
		c.WindowMargin = 8
	}
	if c.WindowGrowth == 0 {
		c.WindowGrowth = 4
	}
	if c.MaxWindowMargin == 0 {
		c.MaxWindowMargin = 32
	}
	if c.StallRounds == 0 {
		c.StallRounds = 3
	}
	return c
}

// NetRoute is the routing outcome for one net.
type NetRoute struct {
	NetID int
	// Nodes are the unique grid nodes of the route tree.
	Nodes []grid.NodeID
	// Edges are the tree edges (wires and vias), canonical order.
	Edges []grid.Edge
	// Virtual are the line-end clearance cells beyond each metal strip
	// end (extension plus half the spacing rule). They carry occupancy —
	// so negotiation spaces line-ends apart — but are not metal: they
	// contribute neither wirelength nor vias.
	Virtual []grid.NodeID
	// Routed reports whether the net is connected and rule-clean.
	Routed bool
	// FailReason explains an unrouted net ("", "search", "congestion",
	// "drc").
	FailReason string
}

// Vias counts via edges in the route.
func (nr *NetRoute) Vias(g *grid.Graph) int {
	n := 0
	for _, e := range nr.Edges {
		if g.IsVia(e) {
			n++
		}
	}
	return n
}

// Wirelength counts wire (non-via) edges in the route.
func (nr *NetRoute) Wirelength(g *grid.Graph) int {
	n := 0
	for _, e := range nr.Edges {
		if !g.IsVia(e) {
			n++
		}
	}
	return n
}

// Result is the outcome of a full routing run.
type Result struct {
	// Routes is indexed by net ID.
	Routes []*NetRoute
	// RoutedNets counts rule-clean connected nets.
	RoutedNets int
	// Vias and Wirelength aggregate over routed nets only.
	Vias       int
	Wirelength int
	// InitialCongested is the number of congested grids after the
	// independent routing stage, before any rip-up (Figure 7(b) metric).
	InitialCongested int
	// InitialCongestedByLayer breaks InitialCongested down per layer.
	InitialCongestedByLayer [tech.NumLayers]int
	// NegotiationIters is the number of rip-up rounds executed.
	NegotiationIters int
	// CongestionUnrouted counts nets dropped to resolve residual overuse.
	CongestionUnrouted int
	// DRCUnrouted counts nets dropped by the line-end rule check.
	DRCUnrouted int
	// Elapsed is the wall-clock routing time.
	Elapsed time.Duration
	// StageElapsed breaks Elapsed into the independent routing, rip-up
	// negotiation, congestion resolution, and DRC stages.
	StageElapsed [4]time.Duration
}

// Router routes one design on one grid. Create with New, optionally seed
// pin access intervals with SeedAssignment, then call Run.
type Router struct {
	d   *design.Design
	g   *grid.Graph
	cfg Config

	// seeded interval cells per net (for release/bookkeeping).
	seededNodes map[int][]grid.NodeID

	// lastRoutes is the route table of the in-progress Run, used by
	// chargeHistory to walk occupied nodes.
	lastRoutes []*NetRoute

	// avoid holds temporarily forbidden nodes during DRC-aware reroutes
	// (other nets' extended line-end clearance zones); nil outside the
	// DRC stage.
	avoid map[grid.NodeID]bool
}

// New creates a router over a validated design and its grid.
func New(d *design.Design, g *grid.Graph, cfg Config) *Router {
	return &Router{d: d, g: g, cfg: cfg.withDefaults(), seededNodes: make(map[int][]grid.NodeID)}
}

// SeedAssignment reserves the assigned pin access intervals on the grid as
// net-owned partial routes. The assignment must be conflict-free (the
// output of the ILP or LR optimizer); overlapping reservations panic.
func (r *Router) SeedAssignment(set *pinaccess.Set, sol *assign.Solution) {
	// Reserve intervals in sorted ID order: seededNodes order seeds the
	// path search, so map iteration order must not reach it.
	seen := make(map[int]bool)
	var ivIDs []int
	for _, ivID := range sol.ByPin {
		if seen[ivID] {
			continue
		}
		seen[ivID] = true
		ivIDs = append(ivIDs, ivID)
	}
	sort.Ints(ivIDs)
	for _, ivID := range ivIDs {
		iv := &set.Intervals[ivID]
		for x := iv.Span.Lo; x <= iv.Span.Hi; x++ {
			id := r.g.ID(x, iv.Track, tech.M2)
			r.g.SetOwner(id, iv.NetID)
			r.seededNodes[iv.NetID] = append(r.seededNodes[iv.NetID], id)
		}
	}
}

// Run executes the full negotiation routing flow.
func (r *Router) Run() *Result {
	return r.RunCtx(context.Background())
}

// RunCtx executes the full negotiation routing flow. A telemetry tracer
// or metrics registry carried by ctx adds per-stage spans, per-round
// negotiation spans (overuse, rip-ups, present-cost factor) and router
// metrics; telemetry is strictly observational, so the routing result is
// byte-identical with or without it.
func (r *Router) RunCtx(ctx context.Context) *Result {
	reg := telemetry.RegistryFrom(ctx)
	start := time.Now() //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result
	res := &Result{Routes: make([]*NetRoute, len(r.d.Nets))}
	r.lastRoutes = res.Routes

	order := r.netOrder()

	// Stage 1: independent routing. Congestion is visible at zero present
	// penalty, so nets route as if alone (other nets' pins/intervals are
	// still hard blockages).
	_, indSpan := telemetry.StartSpan(ctx, "route:independent")
	t0 := time.Now() //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result
	for _, netID := range order {
		nr := r.routeNet(netID, 0, r.cfg.WindowMargin)
		res.Routes[netID] = nr
		r.occupy(nr)
	}
	res.InitialCongested = r.g.CongestedCount()
	res.InitialCongestedByLayer = r.g.CongestedByLayer()
	indSpan.SetAttr("nets", len(order))
	indSpan.SetAttr("congested", res.InitialCongested)
	indSpan.End()
	res.StageElapsed[0] = time.Since(t0) //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result
	t0 = time.Now() //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result

	// Stage 2: rip-up and reroute with ramping penalties. Negotiation
	// stops early once the overuse count stalls: the surviving conflicts
	// are structural (e.g. physically incompatible line-ends) and are
	// resolved by unrouting in stage 3.
	negCtx, negSpan := telemetry.StartSpan(ctx, "route:negotiate")
	presFac := r.cfg.PresentCostBase
	bestOveruse := 1 << 30
	stall := 0
	for iter := 1; iter <= r.cfg.MaxNegotiationIters; iter++ {
		over := r.g.OverusedCount()
		if over == 0 {
			break
		}
		if over < bestOveruse {
			bestOveruse = over
			stall = 0
		} else {
			stall++
			if stall >= r.cfg.StallRounds {
				break
			}
		}
		res.NegotiationIters = iter
		_, iterSpan := telemetry.StartSpan(negCtx, "negotiate_round")
		iterSpan.SetAttr("iter", iter)
		iterSpan.SetAttr("overused", over)
		iterSpan.SetAttr("pres_fac", presFac)
		reg.Histogram("cpr_router_overused_nodes", "Overused grid nodes at the start of each negotiation round.",
			telemetry.DefCountBuckets).Observe(float64(over))
		r.chargeHistory()
		margin := r.cfg.WindowMargin + r.cfg.WindowGrowth*iter
		if margin > r.cfg.MaxWindowMargin {
			margin = r.cfg.MaxWindowMargin
		}
		ripups := 0
		for _, netID := range order {
			nr := res.Routes[netID]
			if nr.Routed && !r.usesOverused(nr) {
				continue
			}
			r.release(nr)
			ripups++
			newRoute := r.routeNet(netID, presFac, margin)
			res.Routes[netID] = newRoute
			r.occupy(newRoute)
		}
		iterSpan.SetAttr("ripups", ripups)
		iterSpan.End()
		reg.Counter("cpr_router_ripups_total", "Nets ripped up and rerouted during negotiation.").Add(float64(ripups))
		presFac *= r.cfg.PresentCostGrowth
	}
	negSpan.SetAttr("rounds", res.NegotiationIters)
	negSpan.End()
	reg.Histogram("cpr_router_negotiation_rounds", "Rip-up-and-reroute rounds per routing run.",
		telemetry.DefCountBuckets).Observe(float64(res.NegotiationIters))
	res.StageElapsed[1] = time.Since(t0) //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result
	t0 = time.Now() //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result

	// Stage 3: resolve residual congestion by unrouting offenders.
	_, resSpan := telemetry.StartSpan(ctx, "route:resolve")
	res.CongestionUnrouted = r.resolveCongestion(res.Routes)
	resSpan.SetAttr("unrouted", res.CongestionUnrouted)
	resSpan.End()
	res.StageElapsed[2] = time.Since(t0) //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result
	t0 = time.Now() //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result

	// Stage 4: line-end extension and design rule check.
	_, drcSpan := telemetry.StartSpan(ctx, "route:drc")
	if !r.cfg.SkipDRC {
		res.DRCUnrouted = r.enforceLineEndRules(res.Routes)
	}
	drcSpan.SetAttr("unrouted", res.DRCUnrouted)
	drcSpan.End()
	res.StageElapsed[3] = time.Since(t0) //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result

	for _, nr := range res.Routes {
		if nr.Routed {
			res.RoutedNets++
			res.Vias += nr.Vias(r.g)
			res.Wirelength += nr.Wirelength(r.g)
		}
	}
	res.Elapsed = time.Since(start) //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result
	return res
}

// netOrder returns net IDs in the configured routing order, breaking ties
// by ID for determinism.
func (r *Router) netOrder() []int {
	order := make([]int, len(r.d.Nets))
	key := make([]int, len(r.d.Nets))
	for i := range order {
		order[i] = i
		switch r.cfg.Order {
		case OrderHPWLDesc:
			key[i] = -r.d.HPWL(i)
		case OrderByID:
			key[i] = 0
		case OrderByPins:
			key[i] = -len(r.d.Nets[i].PinIDs)
		default:
			key[i] = r.d.HPWL(i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if key[order[a]] != key[order[b]] {
			return key[order[a]] < key[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// routeNet connects all pins of a net with sequential multi-source
// shortest-path searches. presFac scales the congestion penalty; margin
// expands the search window beyond the net bounding box.
func (r *Router) routeNet(netID int, presFac float64, margin int) *NetRoute {
	nr := &NetRoute{NetID: netID}
	pins := r.d.Nets[netID].PinIDs
	if len(pins) == 0 {
		nr.Routed = true
		return nr
	}

	// Order pins left to right for a stable, roughly monotone build.
	ordered := append([]int(nil), pins...)
	sort.Slice(ordered, func(a, b int) bool {
		pa, pb := &r.d.Pins[ordered[a]], &r.d.Pins[ordered[b]]
		if pa.Shape.X0 != pb.Shape.X0 {
			return pa.Shape.X0 < pb.Shape.X0
		}
		return pa.Shape.Y0 < pb.Shape.Y0
	})

	r.restoreSeeds(netID)
	win := r.window(netID, margin)
	treeSet := make(map[grid.NodeID]bool)
	addNode := func(id grid.NodeID) {
		if !treeSet[id] {
			treeSet[id] = true
			nr.Nodes = append(nr.Nodes, id)
		}
	}
	for _, cell := range r.pinCells(ordered[0]) {
		addNode(cell)
	}
	if len(ordered) == 1 {
		nr.Routed = true
		return nr
	}

	for _, pid := range ordered[1:] {
		targets := make(map[grid.NodeID]bool)
		already := false
		for _, cell := range r.pinCells(pid) {
			if treeSet[cell] {
				already = true
				break
			}
			targets[cell] = true
		}
		if already {
			continue
		}
		path, ok := r.search(netID, nr.Nodes, targets, win, presFac)
		if !ok {
			nr.Routed = false
			nr.FailReason = "search"
			nr.Nodes = nil
			nr.Edges = nil
			nr.Virtual = nil
			return nr
		}
		for i, id := range path {
			addNode(id)
			if i > 0 {
				nr.Edges = append(nr.Edges, grid.MakeEdge(path[i-1], id))
			}
		}
	}
	nr.Routed = true
	r.computeVirtual(nr)
	return nr
}

// pinCells returns the grid nodes of a pin's M1 shape.
func (r *Router) pinCells(pid int) []grid.NodeID {
	sh := r.d.Pins[pid].Shape
	cells := make([]grid.NodeID, 0, sh.Area())
	for y := sh.Y0; y <= sh.Y1; y++ {
		for x := sh.X0; x <= sh.X1; x++ {
			cells = append(cells, r.g.ID(x, y, tech.M1))
		}
	}
	return cells
}

// window computes the clamped search window for a net.
func (r *Router) window(netID, margin int) searchWindow {
	box := r.d.NetBBox(netID).Expand(margin)
	if box.X0 < 0 {
		box.X0 = 0
	}
	if box.Y0 < 0 {
		box.Y0 = 0
	}
	if box.X1 >= r.d.Width {
		box.X1 = r.d.Width - 1
	}
	if box.Y1 >= r.d.Height {
		box.Y1 = r.d.Height - 1
	}
	return searchWindow{x0: box.X0, y0: box.Y0, w: box.Width(), h: box.Height()}
}

// clearanceMargin is the number of cells beyond each strip end treated as
// occupied: the line-end extension plus half the spacing rule (rounded
// up), so two nets whose clearance cells do not collide always satisfy
// gap >= 2*ext + spacing after extension.
func (r *Router) clearanceMargin() int {
	return r.g.Tech.LineEndExtension + (r.g.Tech.LineEndSpacing+1)/2
}

// computeVirtual fills nr.Virtual with the clearance cells at every strip
// end (skipping cells already part of the route).
func (r *Router) computeVirtual(nr *NetRoute) {
	nr.Virtual = nr.Virtual[:0]
	margin := r.clearanceMargin()
	if margin == 0 {
		return
	}
	inRoute := make(map[grid.NodeID]bool, len(nr.Nodes))
	for _, id := range nr.Nodes {
		inRoute[id] = true
	}
	add := func(id grid.NodeID) {
		if !inRoute[id] {
			inRoute[id] = true
			nr.Virtual = append(nr.Virtual, id)
		}
	}
	for _, s := range r.segmentsOf(nr) {
		limit := r.d.Width
		if s.layer == tech.M3 {
			limit = r.d.Height
		}
		for m := 1; m <= margin; m++ {
			for _, c := range []int{s.span.Lo - m, s.span.Hi + m} {
				if c < 0 || c > limit-1 {
					continue
				}
				if s.layer == tech.M2 {
					add(r.g.ID(c, s.track, tech.M2))
				} else {
					add(r.g.ID(s.track, c, tech.M3))
				}
			}
		}
	}
}

// occupy registers a routed net's nodes (and clearance cells) on the grid
// and trims the net's unused interval reservation so other nets can use
// the freed cells (the reservation is restored if the net is ripped up).
func (r *Router) occupy(nr *NetRoute) {
	if !nr.Routed {
		return
	}
	for _, id := range nr.Nodes {
		r.g.Occupy(id)
	}
	for _, id := range nr.Virtual {
		r.g.OccupyVirtual(id)
	}
	r.trimSeeds(nr)
}

// trimSeeds releases seeded interval cells the final route does not use.
func (r *Router) trimSeeds(nr *NetRoute) {
	seeds := r.seededNodes[nr.NetID]
	if len(seeds) == 0 {
		return
	}
	inRoute := make(map[grid.NodeID]bool, len(nr.Nodes))
	for _, id := range nr.Nodes {
		inRoute[id] = true
	}
	for _, id := range seeds {
		if !inRoute[id] && r.g.Owner(id) == nr.NetID {
			r.g.ClearOwner(id)
		}
	}
}

// restoreSeeds best-effort re-reserves a ripped net's assigned interval
// cells (skipping cells meanwhile taken by other nets).
func (r *Router) restoreSeeds(netID int) {
	for _, id := range r.seededNodes[netID] {
		if r.g.Owner(id) == -1 && r.g.Occupancy(id) == 0 && !r.g.Blocked(id) {
			r.g.SetOwner(id, netID)
		}
	}
}

// release removes a net's occupancy.
func (r *Router) release(nr *NetRoute) {
	if !nr.Routed {
		return
	}
	for _, id := range nr.Nodes {
		r.g.Release(id)
	}
	for _, id := range nr.Virtual {
		r.g.ReleaseVirtual(id)
	}
}

// usesOverused reports whether the route crosses any congested node.
func (r *Router) usesOverused(nr *NetRoute) bool {
	for _, id := range nr.Nodes {
		if r.g.Overused(id) {
			return true
		}
	}
	for _, id := range nr.Virtual {
		if r.g.Overused(id) {
			return true
		}
	}
	return false
}

// chargeHistory adds history cost to every currently overused node.
func (r *Router) chargeHistory() {
	for _, nr := range r.lastRoutes {
		if nr == nil || !nr.Routed {
			continue
		}
		for _, id := range nr.Nodes {
			if r.g.Overused(id) {
				r.g.AddHistory(id, r.cfg.HistoryIncrement)
			}
		}
		for _, id := range nr.Virtual {
			if r.g.Overused(id) {
				r.g.AddHistory(id, r.cfg.HistoryIncrement)
			}
		}
	}
}

// resolveCongestion unroutes nets until no node is overused: repeatedly
// drop the net crossing the most overused nodes. Returns the number of
// nets dropped.
func (r *Router) resolveCongestion(routes []*NetRoute) int {
	dropped := 0
	for r.g.OverusedCount() > 0 {
		worst, worstCount := -1, 0
		for netID, nr := range routes {
			if !nr.Routed {
				continue
			}
			count := 0
			for _, id := range nr.Nodes {
				if r.g.Overused(id) {
					count++
				}
			}
			for _, id := range nr.Virtual {
				if r.g.Overused(id) {
					count++
				}
			}
			if count > worstCount {
				worst, worstCount = netID, count
			}
		}
		if worst < 0 {
			break
		}
		r.release(routes[worst])
		routes[worst].Routed = false
		routes[worst].FailReason = "congestion"
		routes[worst].Nodes = nil
		routes[worst].Edges = nil
		routes[worst].Virtual = nil
		dropped++
	}
	return dropped
}
