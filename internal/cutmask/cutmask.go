// Package cutmask analyzes the SADP cut mask implied by a routing result.
//
// Under self-aligned double patterning, every unidirectional metal
// line-end must be produced by a cut (trim) shape. Cut shapes are
// printable only if they keep a minimum distance from other cuts on the
// same or adjacent tracks — unless they align into a single larger cut,
// which is the standard complexity reduction (cf. the cut mask
// optimization literature the paper builds on: its references [10] and
// [20]).
//
// The cut extraction, merging, and conflict counting themselves live in
// the tech package as the SADP rule engine's mask analysis backend
// (tech.ExtractCuts and friends); this package is the post-routing
// report over a router.Result. Routers can be compared on cut mask
// friendliness the same way the paper compares them on vias and
// wirelength.
package cutmask

import (
	"sort"

	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/router"
	"cpr/internal/tech"
)

// Params tunes the cut mask rules. Nil fields inherit the design
// technology's (resolved) SADP patterning parameters, so an explicit
// zero is honored rather than silently replaced by the default.
type Params struct {
	// CutSpacing is the minimum free distance (grid cells) between two
	// distinct cuts on the same or adjacent tracks. Nil inherits the
	// technology's value (default 2).
	CutSpacing *int
	// MergeTolerance is the maximum along-track offset at which cuts on
	// adjacent tracks still merge into one cut shape. Nil inherits the
	// technology's value (default 0: exact alignment).
	MergeTolerance *int
}

// Int wraps an explicit parameter value for a Params field.
func Int(v int) *int { return &v }

// resolve fills nil fields from the technology's patterning parameters.
func (p Params) resolve(t *tech.Technology) (cutSpacing, mergeTol int) {
	r := t.Patterning.Resolved()
	cutSpacing, mergeTol = r.CutSpacing, r.MergeTolerance
	if p.CutSpacing != nil {
		cutSpacing = *p.CutSpacing
	}
	if p.MergeTolerance != nil {
		mergeTol = *p.MergeTolerance
	}
	return cutSpacing, mergeTol
}

// Cut is one line-end cut location (see tech.Cut).
type Cut = tech.Cut

// Shape is a merged cut mask shape covering one or more aligned cuts
// (see tech.CutShape).
type Shape = tech.CutShape

// Report is the cut mask analysis of one routing result.
type Report struct {
	// LineEnds counts all metal strip ends (two per strip, minus grid
	// boundary ends, which need no cut).
	LineEnds int
	// Shapes is the merged cut mask, deterministic order.
	Shapes []Shape
	// Conflicts counts pairs of distinct shapes on the same or adjacent
	// tracks closer than CutSpacing along the track direction.
	Conflicts int
}

// MaskComplexity is the number of distinct cut shapes after merging —
// the metric cut mask optimization minimizes.
func (r *Report) MaskComplexity() int { return len(r.Shapes) }

// Analyze extracts and merges the cut mask for all routed nets.
func Analyze(d *design.Design, g *grid.Graph, res *router.Result, params Params) *Report {
	cutSpacing, mergeTol := params.resolve(d.Tech)
	cuts := tech.ExtractCuts(Segments(g, res), d.Width, d.Height, d.Tech.LineEndExtension)
	shapes := tech.MergeCuts(cuts, mergeTol)
	return &Report{
		LineEnds:  len(cuts),
		Shapes:    shapes,
		Conflicts: tech.CountCutConflicts(shapes, cutSpacing),
	}
}

// Segments decomposes every routed net of a result into raw
// (pre-extension) per-track metal strips, in deterministic (net, layer,
// track, position) order — the input form the rule engines' mask
// analyses consume.
func Segments(g *grid.Graph, res *router.Result) []tech.Seg {
	var segs []tech.Seg
	for netID, nr := range res.Routes {
		if nr == nil || !nr.Routed {
			continue
		}
		m2 := make(map[int][]int)
		m3 := make(map[int][]int)
		for _, id := range nr.Nodes {
			x, y, z := g.Coords(id)
			switch z {
			case tech.M2:
				m2[y] = append(m2[y], x)
			case tech.M3:
				m3[x] = append(m3[x], y)
			}
		}
		for _, track := range sortedIntKeys(m2) {
			for _, span := range cellRuns(m2[track]) {
				segs = append(segs, tech.Seg{Net: netID, Layer: tech.M2, Track: track, Lo: span.Lo, Hi: span.Hi})
			}
		}
		for _, track := range sortedIntKeys(m3) {
			for _, span := range cellRuns(m3[track]) {
				segs = append(segs, tech.Seg{Net: netID, Layer: tech.M3, Track: track, Lo: span.Lo, Hi: span.Hi})
			}
		}
	}
	return segs
}

func cellRuns(cells []int) []geom.Interval {
	if len(cells) == 0 {
		return nil
	}
	sort.Ints(cells)
	var out []geom.Interval
	cur := geom.Interval{Lo: cells[0], Hi: cells[0]}
	for _, c := range cells[1:] {
		switch {
		case c == cur.Hi || c == cur.Hi+1:
			if c > cur.Hi {
				cur.Hi = c
			}
		default:
			out = append(out, cur)
			cur = geom.Interval{Lo: c, Hi: c}
		}
	}
	return append(out, cur)
}

// sortedIntKeys returns a map's integer keys in ascending order.
func sortedIntKeys(m map[int][]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
