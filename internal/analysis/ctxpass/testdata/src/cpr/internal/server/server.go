// Package server is golden input for the ctxpass analyzer: a scoped
// service-layer package.
package server

import "context"

// SpawnNoCtx starts a goroutine with no way to cancel it: flagged.
func SpawnNoCtx(work func()) { // want `exported SpawnNoCtx spawns goroutines but has no context\.Context parameter`
	go work()
}

// SpinNoCtx loops forever with no way out: flagged.
func SpinNoCtx(step func() bool) { // want `exported SpinNoCtx loops unboundedly \(for without condition\) but has no context\.Context parameter`
	for {
		if step() {
			return
		}
	}
}

// DrainNoCtx consumes a channel unboundedly: flagged.
func DrainNoCtx(jobs chan int) int { // want `exported DrainNoCtx loops unboundedly \(range over channel\) but has no context\.Context parameter`
	total := 0
	for j := range jobs {
		total += j
	}
	return total
}

// IgnoresCtx accepts a context and then never looks at it: flagged.
func IgnoresCtx(ctx context.Context, work func()) { // want `exported IgnoresCtx spawns goroutines and takes a context\.Context but never consults it`
	go work()
}

// BlankCtx cannot consult an unnamed context: flagged.
func BlankCtx(_ context.Context, work func()) { // want `exported BlankCtx spawns goroutines and takes a context\.Context but never consults it`
	go work()
}

// Serve is the compliant shape: spawns, accepts ctx, and polls it.
func Serve(ctx context.Context, work func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	select {
	case <-ctx.Done():
	case <-done:
	}
}

// PassesOn forwards ctx to a callee: consulting by delegation is fine.
func PassesOn(ctx context.Context, run func(context.Context) error) error {
	for {
		if err := run(ctx); err != nil {
			return err
		}
	}
}

// Bounded does plain bounded work: no context needed.
func Bounded(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// conditioned loops have an exit and are not flagged.
func Conditioned(n int) int {
	i := 0
	for i < n {
		i++
	}
	return i
}

// spawnInternal is unexported: out of scope.
func spawnInternal(work func()) {
	go work()
}

// Annotated documents a channel-close lifecycle: suppressed.
//
//cprlint:ctxpass workers exit when the queue channel closes on Drain; lifecycle is channel-managed
func Annotated(queue chan func()) {
	go func() {
		for job := range queue {
			job()
		}
	}()
}

var _ = spawnInternal
