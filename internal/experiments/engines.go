package experiments

import (
	"fmt"
	"io"

	"cpr/internal/core"
	"cpr/internal/cutmask"
	"cpr/internal/grid"
	"cpr/internal/synth"
	"cpr/internal/tech"
	"cpr/internal/verify"
)

// RuleEngineRow is one circuit routed under one multi-patterning rule
// engine.
type RuleEngineRow struct {
	Circuit     string
	Engine      string
	RoutedPct   float64
	Vias        int
	Wirelength  int
	Colors      int
	Shapes      int
	Stitches    int
	Uncolorable int
	Conflicts   int
	VerifyOK    bool
	CPUSeconds  float64
}

// RuleEngineMatrix routes every selected circuit under each of the three
// rule engines (sadp, lele, tpl) and reports routing quality next to the
// engine's mask decomposition analysis. The hard acceptance property is
// that tpl leaves zero uncolorable segments: the router's conflict
// pricing plus stitch insertion must always reach a legal 3-coloring on
// these circuits. Every run is also checked by the independent verifier.
func RuleEngineMatrix(w io.Writer, cfg Config) ([]RuleEngineRow, error) {
	cfg = cfg.withDefaults()
	engines := []string{tech.EngineSADP, tech.EngineLELE, tech.EngineTPL}
	fmt.Fprintf(w, "%-8s %-6s %7s %8s %9s %7s %8s %9s %12s %10s %8s %8s\n",
		"circuit", "engine", "Rout%", "Via#", "WL", "colors", "shapes",
		"stitches", "uncolorable", "conflicts", "verify", "cpu(s)")
	var rows []RuleEngineRow
	for _, name := range cfg.Circuits {
		for _, engine := range engines {
			spec, err := synth.SpecByName(name)
			if err != nil {
				return nil, err
			}
			d, err := synth.Generate(spec)
			if err != nil {
				return nil, err
			}
			// Tag the design itself (not Options.RuleEngine) so the mask
			// analysis below sees the same tech the run routed under.
			tc := *d.Tech
			tc.Patterning.Engine = engine
			d.Tech = &tc
			res, err := core.Run(d, core.Options{Mode: core.ModeCPR, Workers: cfg.Workers})
			if err != nil {
				return nil, fmt.Errorf("rule-engine matrix %s/%s: %w", name, engine, err)
			}
			g := grid.New(d)
			rules := tech.RulesFor(d.Tech)
			mask := rules.AnalyzeMask(cutmask.Segments(g, res.Router), d.Width, d.Height)
			rep := verify.Check(d, g, res.Router)
			row := RuleEngineRow{
				Circuit:     name,
				Engine:      engine,
				RoutedPct:   res.Metrics.RoutPct,
				Vias:        res.Metrics.Vias,
				Wirelength:  res.Metrics.WL,
				Colors:      mask.Colors,
				Shapes:      mask.Shapes,
				Stitches:    mask.Stitches,
				Uncolorable: mask.Uncolorable,
				Conflicts:   mask.Conflicts,
				VerifyOK:    rep.Ok(),
				CPUSeconds:  res.Metrics.CPUSeconds,
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-8s %-6s %7.2f %8d %9d %7d %8d %9d %12d %10d %8v %8.2f\n",
				row.Circuit, row.Engine, row.RoutedPct, row.Vias, row.Wirelength,
				row.Colors, row.Shapes, row.Stitches, row.Uncolorable, row.Conflicts,
				row.VerifyOK, row.CPUSeconds)
			if engine == tech.EngineTPL && row.Uncolorable != 0 {
				return rows, fmt.Errorf("rule-engine matrix %s/tpl: %d uncolorable segments (want 0)",
					name, row.Uncolorable)
			}
			if !row.VerifyOK {
				return rows, fmt.Errorf("rule-engine matrix %s/%s: verification failed: %v",
					name, engine, rep.Errors)
			}
		}
	}
	return rows, nil
}
