// Package assign models the weighted interval assignment problem at the
// heart of concurrent pin access optimization (paper §3.3):
//
//	max   sum_{p_j in P} sum_{I_i in S_j} f(I_i) * x_i          (1a)
//	s.t.  sum_{I_i in S_j} x_i  = 1   for every pin p_j         (1b)
//	      sum_{I_i in C_m} x_i <= 1   for every conflict set    (1c)
//	      x_i in {0, 1}                                         (1d)
//
// The objective counts an interval once per covered pin, so an interval
// serving k same-net pins (an intra-panel connection) carries k times its
// profit — exactly the paper's "counting its corresponding variable
// multiple times".
//
// The package builds the model from generated intervals and detected
// conflicts, converts it to a binary ILP for the exact solver, evaluates
// arbitrary selections, and provides the always-feasible minimum-interval
// solution of Theorem 1.
package assign

import (
	"fmt"
	"math"
	"sort"

	"cpr/internal/conflict"
	"cpr/internal/ilp"
	"cpr/internal/lp"
	"cpr/internal/parallel"
	"cpr/internal/pinaccess"
)

// ProfitFn maps an interval length (grid points) to its profit f(I).
type ProfitFn func(length int) float64

// SqrtProfit is the paper's f(I) = sqrt(l_i): it favours long intervals
// with diminishing returns, which balances lengths across pins.
func SqrtProfit(length int) float64 { return math.Sqrt(float64(length)) }

// LinearProfit is the ablation alternative f(I) = l_i from the paper's
// discussion ("compared to a linear function").
func LinearProfit(length int) float64 { return float64(length) }

// Model is one weighted interval assignment instance.
type Model struct {
	// Set holds the candidate intervals and the per-pin sets S_j.
	Set *pinaccess.Set
	// Conflicts holds the maximal conflict sets C and membership index.
	Conflicts *conflict.Matrix
	// Profits[i] is f(len(I_i)) multiplied by the number of covered pins
	// (objective coefficient of x_i in (1a)).
	Profits []float64
	// BaseProfits[i] is f(len(I_i)) without the multiplicity factor.
	BaseProfits []float64
}

// Build assembles a model from a generated interval set using profit
// function f (use SqrtProfit for the paper's objective).
func Build(set *pinaccess.Set, f ProfitFn) *Model {
	return BuildWorkers(set, f, 1)
}

// BuildWorkers is Build with the conflict sweep and profit evaluation
// sharded across up to workers goroutines (<= 1 is sequential, and the
// model is byte-identical for every value). With workers > 1 the profit
// function f must be safe for concurrent calls; the built-in profit
// functions are pure.
func BuildWorkers(set *pinaccess.Set, f ProfitFn, workers int) *Model {
	m := &Model{
		Set:         set,
		Conflicts:   conflict.BuildMatrixWorkers(set.Intervals, workers),
		Profits:     make([]float64, len(set.Intervals)),
		BaseProfits: make([]float64, len(set.Intervals)),
	}
	parallel.ForEachChunk(workers, len(set.Intervals), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			base := f(set.Intervals[i].Span.Len())
			m.BaseProfits[i] = base
			m.Profits[i] = base * float64(len(set.Intervals[i].PinIDs))
		}
	})
	return m
}

// NumIntervals returns the number of candidate intervals (ILP variables).
func (m *Model) NumIntervals() int { return len(m.Set.Intervals) }

// NumPins returns the number of pins to be assigned.
func (m *Model) NumPins() int { return len(m.Set.PinIDs) }

// Solution is an interval selection with its quality metrics.
type Solution struct {
	// Selected[i] reports whether interval i is chosen.
	Selected []bool
	// ByPin maps each pin ID to its assigned interval ID.
	ByPin map[int]int
	// Objective is the (1a) value of the selection.
	Objective float64
	// Violations is the number of conflict sets with more than one
	// selected interval (0 for a legal solution).
	Violations int
}

// Evaluate computes objective and violation count for a selection and
// derives the per-pin assignment. Pins covered by several selected
// intervals take the lowest interval ID; unassigned pins are absent from
// ByPin.
func (m *Model) Evaluate(selected []bool) *Solution {
	s := &Solution{
		Selected: append([]bool(nil), selected...),
		ByPin:    make(map[int]int, m.NumPins()),
	}
	for i, sel := range selected {
		if !sel {
			continue
		}
		s.Objective += m.Profits[i]
		for _, pid := range m.Set.Intervals[i].PinIDs {
			if cur, ok := s.ByPin[pid]; !ok || i < cur {
				s.ByPin[pid] = i
			}
		}
	}
	s.Violations = m.Conflicts.Violations(selected)
	return s
}

// FromAssignment builds a Solution from an explicit pin-to-interval map.
func (m *Model) FromAssignment(byPin map[int]int) *Solution {
	selected := make([]bool, m.NumIntervals())
	for _, iv := range byPin {
		selected[iv] = true
	}
	s := m.Evaluate(selected)
	// Preserve the caller's assignment choices exactly.
	s.ByPin = make(map[int]int, len(byPin))
	for p, iv := range byPin {
		s.ByPin[p] = iv
	}
	return s
}

// MinimumSolution returns the Theorem 1 feasible solution: every pin takes
// one of its minimum intervals. The result has zero violations.
func (m *Model) MinimumSolution() *Solution {
	byPin := make(map[int]int, m.NumPins())
	for _, pid := range m.Set.PinIDs {
		iv := m.Set.AnyMinInterval(pid)
		if iv >= 0 {
			byPin[pid] = iv
		}
	}
	return m.FromAssignment(byPin)
}

// CheckLegal verifies a solution satisfies (1b)-(1d): every pin covered by
// exactly one selected interval (shared intervals may serve several pins)
// and no conflict set with two selections.
func (m *Model) CheckLegal(s *Solution) error {
	for _, pid := range m.Set.PinIDs {
		count := 0
		for _, iv := range m.Set.ByPin[pid] {
			if s.Selected[iv] {
				count++
			}
		}
		if count != 1 {
			return fmt.Errorf("assign: pin %d covered by %d selected intervals, want 1", pid, count)
		}
	}
	if v := m.Conflicts.Violations(s.Selected); v != 0 {
		return fmt.Errorf("assign: %d conflict sets violated", v)
	}
	return nil
}

// BuildILP converts the model to the paper's binary ILP (Formula (1)).
// Unit bounds are implied by the pin equality rows, so they are omitted.
func (m *Model) BuildILP() *ilp.Problem {
	p := ilp.NewProblem(m.NumIntervals())
	p.AddUnitBounds = false
	copy(p.Objective, m.Profits)
	for _, pid := range m.Set.PinIDs {
		terms := make([]lp.Term, 0, len(m.Set.ByPin[pid]))
		for _, iv := range m.Set.ByPin[pid] {
			terms = append(terms, lp.Term{Var: iv, Coef: 1})
		}
		p.AddConstraint(terms, lp.EQ, 1)
	}
	for _, cs := range m.Conflicts.Sets {
		terms := make([]lp.Term, 0, len(cs.IDs))
		for _, iv := range cs.IDs {
			terms = append(terms, lp.Term{Var: iv, Coef: 1})
		}
		p.AddConstraint(terms, lp.LE, 1)
	}
	return p
}

// SolveILP runs the exact branch-and-bound solver on the model, warm
// started from the minimum-interval solution, and returns the resulting
// assignment.
func (m *Model) SolveILP(cfg ilp.Config) (*Solution, ilp.Result, error) {
	if cfg.InitialSolution == nil {
		min := m.MinimumSolution()
		cfg.InitialSolution = min.Selected
	}
	res := ilp.Solve(m.BuildILP(), cfg)
	if res.Status != ilp.Optimal && res.Status != ilp.Feasible {
		return nil, res, fmt.Errorf("assign: ILP solve failed with status %v", res.Status)
	}
	sol := m.Evaluate(res.X)
	if err := m.CheckLegal(sol); err != nil {
		return nil, res, fmt.Errorf("assign: ILP returned illegal selection: %w", err)
	}
	return sol, res, nil
}

// LengthStats summarizes assigned interval lengths for balance analysis.
type LengthStats struct {
	Total int
	Min   int
	Max   int
	Mean  float64
	// StdDev measures balance: the paper's sqrt profit exists to keep
	// this low while Total stays high.
	StdDev float64
}

// Lengths computes length statistics over the per-pin assigned intervals.
func (s *Solution) Lengths(set *pinaccess.Set) LengthStats {
	var st LengthStats
	n := 0
	var sum, sumSq float64
	st.Min = math.MaxInt
	// Sum in sorted pin order: float addition is order-dependent, and
	// Mean/StdDev are part of the reported (and cached) result.
	pids := make([]int, 0, len(s.ByPin))
	for pid := range s.ByPin {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		iv := s.ByPin[pid]
		l := set.Intervals[iv].Span.Len()
		st.Total += l
		if l < st.Min {
			st.Min = l
		}
		if l > st.Max {
			st.Max = l
		}
		sum += float64(l)
		sumSq += float64(l) * float64(l)
		n++
	}
	if n == 0 {
		st.Min = 0
		return st
	}
	st.Mean = sum / float64(n)
	variance := sumSq/float64(n) - st.Mean*st.Mean
	if variance > 0 {
		st.StdDev = math.Sqrt(variance)
	}
	return st
}
