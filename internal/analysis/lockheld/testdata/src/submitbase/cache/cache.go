// Package cache is the stub design cache: memory first, peer exchange
// on miss — the blocking is two calls down from the manager.
package cache

import "submitbase/exchange"

type Backed struct {
	mem map[string]string
	ex  *exchange.Service
}

func (b *Backed) Get(key string) (string, bool) {
	if v, ok := b.mem[key]; ok {
		return v, true
	}
	v, err := b.ex.GetBlock(key)
	if err != nil {
		return "", false
	}
	return v, true
}
