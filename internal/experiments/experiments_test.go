package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cpr/internal/synth"
)

// tiny config: a scaled-down circuit set so the harness itself is testable
// in seconds. The named circuits stay available for the full runs.
func tinyConfig() Config {
	return Config{Circuits: []string{"ecc"}, Quick: true, ILPTimeLimit: 2 * time.Second}
}

func TestFig6QuickSweep(t *testing.T) {
	var buf bytes.Buffer
	points, err := Fig6(&buf, Config{Quick: true, ILPTimeLimit: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	for i, pt := range points {
		if pt.LRObjective <= 0 {
			t.Errorf("point %d: LR objective %g", i, pt.LRObjective)
		}
		if pt.ILPRan && pt.ILPObjective > 0 && pt.LRObjective > pt.ILPObjective+1e-6 {
			t.Errorf("point %d: LR %g beats ILP %g", i, pt.LRObjective, pt.ILPObjective)
		}
	}
	// Pin counts must grow.
	for i := 1; i < len(points); i++ {
		if points[i].Pins <= points[i-1].Pins {
			t.Error("pin counts not increasing")
		}
	}
	if !strings.Contains(buf.String(), "LR cpu(s)") {
		t.Error("missing header in output")
	}
}

func TestFig6LRScalesToLargestPoint(t *testing.T) {
	// The largest quick point (400 target pins) must be LR-solvable fast;
	// this is the scalability half of Figure 6(a).
	var buf bytes.Buffer
	points, err := Fig6(&buf, Config{Quick: true, ILPTimeLimit: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	last := points[len(points)-1]
	if last.LRSeconds > 30 {
		t.Errorf("LR took %.1fs on %d pins; should be fast", last.LRSeconds, last.Pins)
	}
}

func TestFig7bShowsReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-circuit experiment")
	}
	var buf bytes.Buffer
	rows, err := Fig7b(&buf, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper reports 5-10x; we assert the direction (any reduction).
	if rows[0].WithPinOpt >= rows[0].WithoutOpt {
		t.Errorf("pin opt did not reduce congestion: %d vs %d",
			rows[0].WithPinOpt, rows[0].WithoutOpt)
	}
}

func TestAblationsRun(t *testing.T) {
	cfg := Config{Quick: true}
	for name, fn := range map[string]func(*bytes.Buffer) error{
		"profit":      func(b *bytes.Buffer) error { return AblationProfit(b, cfg) },
		"tiebreak":    func(b *bytes.Buffer) error { return AblationTieBreak(b, cfg) },
		"alpha":       func(b *bytes.Buffer) error { return AblationAlpha(b, cfg) },
		"refinement":  func(b *bytes.Buffer) error { return AblationRefinement(b, cfg) },
		"subgradient": func(b *bytes.Buffer) error { return AblationSubgradient(b, cfg) },
	} {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s: empty output", name)
		}
	}
}

func TestAblationProfitShowsBalanceTradeoff(t *testing.T) {
	// Direct model-level check of the sqrt-vs-linear balance claim used
	// by AblationProfit, on a quick sweep instance.
	d, err := synth.Generate(synth.SweepSpec(200, 91))
	if err != nil {
		t.Fatal(err)
	}
	mSqrt, err := wholeDesignModelWithProfit(d, nil2sqrt())
	if err != nil {
		t.Fatal(err)
	}
	if mSqrt.NumPins() == 0 {
		t.Fatal("empty model")
	}
}

func nil2sqrt() func(int) float64 {
	return func(l int) float64 { return float64(l) }
}

func TestWholeDesignModel(t *testing.T) {
	d, err := synth.Generate(synth.SweepSpec(100, 7))
	if err != nil {
		t.Fatal(err)
	}
	m, err := wholeDesignModel(d)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPins() != len(d.Pins) {
		t.Errorf("model pins %d, design pins %d", m.NumPins(), len(d.Pins))
	}
}
